package verify_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ltsp"
	"ltsp/internal/core"
	"ltsp/internal/ddg"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/regalloc"
	"ltsp/internal/verify"
	"ltsp/internal/workload"
)

// exampleLoop mirrors the CLI's demo loop: a load, an add and a store.
func exampleLoop() *ir.Loop {
	l := ir.NewLoop("example")
	base, out, v, sum := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, base, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(sum, v, v))
	l.Append(ir.St(out, sum, 4, 4))
	l.Init(base, 0x100000)
	l.Init(out, 0x200000)
	l.LiveOut = []ir.Reg{base, out}
	return l
}

func compilePipelined(t *testing.T, l *ir.Loop, opts core.Options) *core.Compiled {
	t.Helper()
	c, err := core.Pipeline(l, opts)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return c
}

func TestStructuralAndOracleOnExample(t *testing.T) {
	m := machine.Itanium2()
	l := exampleLoop()
	c := compilePipelined(t, l, core.Options{LatencyTolerant: true})
	if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
		t.Fatalf("structural: %v", err)
	}
	if err := verify.Kernel(c.Loop(), c.Program, verify.Config{Seed: 7}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestCompiledVerifyWiring checks the public ltsp wiring: Options.Verify
// on the compile path and the Compiled.Verify method, for both pipelined
// and sequential outcomes.
func TestCompiledVerifyWiring(t *testing.T) {
	c, err := ltsp.Compile(exampleLoop(), ltsp.Options{LatencyTolerant: true, Verify: true})
	if err != nil {
		t.Fatalf("compile with verify: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("re-verify: %v", err)
	}
	off := false
	c, err = ltsp.Compile(exampleLoop(), ltsp.Options{Pipeline: &off, Verify: true})
	if err != nil {
		t.Fatalf("sequential compile with verify: %v", err)
	}
	if c.Pipelined {
		t.Fatal("expected a sequential compilation")
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("sequential re-verify: %v", err)
	}
}

// TestScheduleRejectsEmptyBody: the structural verifier refuses a loop
// with no instructions rather than inventing a stage count for it.
func TestScheduleRejectsEmptyBody(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("empty")
	s := &modsched.Schedule{II: 1, Stages: 1}
	if err := verify.Schedule(m, l, s, nil); err == nil {
		t.Fatal("want error for empty body")
	}
}

// TestSingleStageIIOne: a one-instruction loop compiles to a single-stage
// II=1 kernel; the verifier must accept the degenerate shape.
func TestSingleStageIIOne(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("tiny")
	b := l.NewGR()
	l.Append(ir.St(b, b, 8, 8))
	l.Init(b, 0x100000)
	l.LiveOut = []ir.Reg{b}

	c := compilePipelined(t, l, core.Options{})
	if c.FinalII != 1 || c.Stages != 1 {
		t.Logf("note: tiny loop compiled to II=%d stages=%d", c.FinalII, c.Stages)
	}
	if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
		t.Fatalf("structural: %v", err)
	}
	if err := verify.Kernel(c.Loop(), c.Program, verify.Config{Seed: 3}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestWhileLoopOracle runs the br.wtop path: the data-terminated chase
// loop must verify structurally and semantically, including trip counts
// shorter than the stage count (the chain ends before the kernel fills).
func TestWhileLoopOracle(t *testing.T) {
	m := machine.Itanium2()
	for _, chain := range []int64{1, 2, 5, 40} {
		gen, initMem := workload.WhileChase(256, chain, 23)
		l := gen()
		c := compilePipelined(t, l, core.Options{LatencyTolerant: true})
		if c.Program.WhileQP.IsNone() {
			t.Fatalf("chain %d: expected a wtop kernel", chain)
		}
		if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
			t.Fatalf("chain %d: structural: %v", chain, err)
		}
		err := verify.Kernel(c.Loop(), c.Program, verify.Config{
			InitMem: initMem,
			Trips:   []int64{chain + 1, chain + int64(c.Stages) + 2, 64},
		})
		if err != nil {
			t.Fatalf("chain %d: oracle: %v", chain, err)
		}
	}
}

// TestTripShorterThanStages pins the short-trip path explicitly: a deep
// pipeline (forced long load latency) with trips 1..stages-1 never reaches
// steady state, and the oracle must still see identical results.
func TestTripShorterThanStages(t *testing.T) {
	m := machine.Itanium2()
	l := exampleLoop()
	c := compilePipelined(t, l, core.Options{LatencyTolerant: true, ForceLoadLatency: 21})
	if c.Stages < 3 {
		t.Fatalf("want a deep pipeline, got %d stages", c.Stages)
	}
	if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
		t.Fatalf("structural: %v", err)
	}
	var trips []int64
	for tr := int64(1); tr < int64(c.Stages); tr++ {
		trips = append(trips, tr)
	}
	if err := verify.Kernel(c.Loop(), c.Program, verify.Config{Seed: 11, Trips: trips}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestMutationCaught is the acceptance-criterion mutation test: moving a
// single operation by one kernel row must be caught by the structural
// verifier, and — when the corrupted schedule can still be code-generated —
// executing the corrupted kernel must be caught by the semantic oracle.
func TestMutationCaught(t *testing.T) {
	m := machine.Itanium2()
	l := exampleLoop()
	c := compilePipelined(t, l, core.Options{LatencyTolerant: true})
	if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}

	structuralHits, oracleHits := 0, 0
	for i := range c.Schedule.Time {
		for _, delta := range []int{-1, 1} {
			mut := *c.Schedule
			mut.Time = append([]int(nil), c.Schedule.Time...)
			mut.Time[i] += delta
			if mut.Time[i] < 0 {
				continue
			}
			// Keep the derived stage count consistent with the mutated
			// times so the verifier tests the dependence/resource
			// invariants, not just the stage-count arithmetic.
			maxT := 0
			for _, tt := range mut.Time {
				if tt > maxT {
					maxT = tt
				}
			}
			mut.Stages = maxT/mut.II + 1

			serr := verify.Schedule(m, c.Loop(), &mut, c.Assignment)
			if serr != nil {
				structuralHits++
			}

			// Regenerate code for the corrupted schedule where possible
			// and let the oracle execute it.
			g, err := ddg.Build(c.Loop())
			if err != nil {
				t.Fatalf("ddg: %v", err)
			}
			asn, err := regalloc.Allocate(m, g, &mut)
			if err != nil {
				continue
			}
			p, err := core.GenKernel(c.Loop(), &mut, asn)
			if err != nil {
				continue
			}
			p.Stages = mut.Stages
			p.Pipelined = true
			if kerr := verify.Kernel(c.Loop(), p, verify.Config{Seed: 5}); kerr != nil {
				oracleHits++
			} else if serr == nil {
				t.Errorf("mutation op %d delta %+d: accepted by both verifier and oracle", i, delta)
			}
		}
	}
	if structuralHits == 0 {
		t.Error("no single-row mutation was caught by the structural verifier")
	}
	if oracleHits == 0 {
		t.Error("no single-row mutation was caught by the semantic oracle")
	}
	t.Logf("mutations caught: structural %d, oracle %d", structuralHits, oracleHits)
}

// TestWorkloadOracle runs the verifier over every loop of all 55 workload
// models with their real memory layouts.
func TestWorkloadOracle(t *testing.T) {
	m := machine.Itanium2()
	benches := workload.All()
	if len(benches) != 55 {
		t.Fatalf("expected 55 workload models, got %d", len(benches))
	}
	for _, b := range benches {
		for i := range b.Loops {
			spec := &b.Loops[i]
			l := spec.Gen()
			c, err := ltsp.Compile(l, ltsp.Options{
				Mode:            ltsp.ModeHLO,
				Prefetch:        true,
				LatencyTolerant: true,
			})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", b.Name, spec.Name, err)
			}
			if err := c.Verify(); err != nil {
				t.Errorf("%s/%s: verify: %v", b.Name, spec.Name, err)
			}
			// And again with the model's own data layout.
			if err := verify.Kernel(l, c.Program, verify.Config{InitMem: spec.InitMem}); err != nil {
				t.Errorf("%s/%s: oracle(model data): %v", b.Name, spec.Name, err)
			}
		}
	}
	_ = m
}

// --- seeded random loops -------------------------------------------------

// randLoop builds a random well-formed loop plus a memory initializer,
// following the same structural rules as the pipeliner's equivalence
// suite: single definitions, in-place registers read only by their
// definer, at least one observable effect.
type randLoop struct {
	l      *ir.Loop
	rng    *rand.Rand
	ints   []ir.Reg
	fps    []ir.Reg
	arrays int64
	inits  []func(*interp.Memory)
}

func newRandLoop(seed int64, size int) *randLoop {
	g := &randLoop{l: ir.NewLoop(fmt.Sprintf("rand%d", seed)), rng: rand.New(rand.NewSource(seed))}
	inv := g.l.NewGR()
	g.l.Init(inv, 37)
	g.ints = append(g.ints, inv)
	finv := g.l.NewFR()
	g.l.InitF(finv, 1.25)
	g.fps = append(g.fps, finv)
	for i := 0; i < size; i++ {
		switch g.rng.Intn(10) {
		case 0, 1:
			g.addIntLoad()
		case 2:
			g.addFPLoad()
		case 3, 4:
			g.addALU()
		case 5:
			g.addFPALU()
		case 6:
			g.addStore()
		case 7:
			g.addAccumulator()
		case 8:
			g.addPredicated()
		default:
			g.addCarriedChain()
		}
	}
	g.addStore()
	g.addAccumulator()
	return g
}

func (g *randLoop) memInit(m *interp.Memory) {
	for _, f := range g.inits {
		f(m)
	}
}

func (g *randLoop) newArrayBase() (ir.Reg, int64) {
	base := 0x0100_0000 + g.arrays*0x0010_0000
	g.arrays++
	r := g.l.NewGR()
	g.l.Init(r, base)
	return r, base
}

func (g *randLoop) pickInt() ir.Reg { return g.ints[g.rng.Intn(len(g.ints))] }
func (g *randLoop) pickFP() ir.Reg  { return g.fps[g.rng.Intn(len(g.fps))] }

func (g *randLoop) addIntLoad() {
	b, addr := g.newArrayBase()
	d := g.l.NewGR()
	ld := ir.Ld(d, b, 8, 8)
	if g.rng.Intn(2) == 0 {
		ld.Mem.Hint = ir.Hint(g.rng.Intn(3))
	}
	g.l.Append(ld)
	g.ints = append(g.ints, d)
	seed := g.rng.Int63n(1 << 30)
	g.inits = append(g.inits, func(m *interp.Memory) {
		for i := int64(0); i < 96; i++ {
			m.Store(addr+8*i, 8, seed+i*13)
		}
	})
}

func (g *randLoop) addFPLoad() {
	b, addr := g.newArrayBase()
	d := g.l.NewFR()
	g.l.Append(ir.LdF(d, b, 8))
	g.fps = append(g.fps, d)
	seed := float64(g.rng.Intn(100))
	g.inits = append(g.inits, func(m *interp.Memory) {
		for i := int64(0); i < 96; i++ {
			m.StoreF(addr+8*i, seed+float64(i)*0.5)
		}
	})
}

func (g *randLoop) addALU() {
	d := g.l.NewGR()
	switch g.rng.Intn(4) {
	case 0:
		g.l.Append(ir.Add(d, g.pickInt(), g.pickInt()))
	case 1:
		g.l.Append(ir.Sub(d, g.pickInt(), g.pickInt()))
	case 2:
		g.l.Append(ir.Shladd(d, g.pickInt(), int64(g.rng.Intn(4)+1), g.pickInt()))
	default:
		g.l.Append(ir.AddI(d, g.pickInt(), int64(g.rng.Intn(1000))))
	}
	g.ints = append(g.ints, d)
}

func (g *randLoop) addFPALU() {
	d := g.l.NewFR()
	switch g.rng.Intn(3) {
	case 0:
		g.l.Append(ir.FAdd(d, g.pickFP(), g.pickFP()))
	case 1:
		g.l.Append(ir.FMul(d, g.pickFP(), g.pickFP()))
	default:
		g.l.Append(ir.FMA(d, g.pickFP(), g.pickFP(), g.pickFP()))
	}
	g.fps = append(g.fps, d)
}

func (g *randLoop) addStore() {
	b, _ := g.newArrayBase()
	g.l.Append(ir.St(b, g.pickInt(), 8, 8))
}

func (g *randLoop) addAccumulator() {
	acc := g.l.NewGR()
	g.l.Init(acc, int64(g.rng.Intn(50)))
	g.l.Append(ir.Add(acc, acc, g.pickInt()))
	g.l.LiveOut = append(g.l.LiveOut, acc)
}

func (g *randLoop) addPredicated() {
	p := g.l.NewPR()
	g.l.Append(ir.CmpLt(p, ir.None, g.pickInt(), g.pickInt()))
	b, _ := g.newArrayBase()
	g.l.Append(ir.Predicated(p, ir.St(b, g.pickInt(), 8, 0)))
}

func (g *randLoop) addCarriedChain() {
	cur, next := g.l.NewGR(), g.l.NewGR()
	g.l.Append(ir.Mov(cur, next))
	g.l.Append(ir.AddI(next, cur, int64(g.rng.Intn(16)+1)))
	g.l.Init(next, int64(g.rng.Intn(100)))
	g.ints = append(g.ints, cur)
	b, _ := g.newArrayBase()
	g.l.Append(ir.St(b, cur, 8, 8))
}

// TestRandomLoopOracle is the 1,000-seed acceptance run: every random
// loop's pipelined kernel must pass both the structural verifier and the
// differential oracle. -short trims it to 100 seeds.
func TestRandomLoopOracle(t *testing.T) {
	m := machine.Itanium2()
	n := 1000
	if testing.Short() {
		n = 100
	}
	for seed := 0; seed < n; seed++ {
		g := newRandLoop(int64(seed), seed%12+2)
		if err := g.l.Verify(); err != nil {
			t.Fatalf("seed %d: generator produced invalid loop: %v", seed, err)
		}
		opts := core.Options{LatencyTolerant: seed%2 == 0, BoostDelinquent: seed%4 == 0}
		c, err := core.Pipeline(g.l.Clone(), opts)
		if err != nil {
			t.Fatalf("seed %d: pipeline: %v", seed, err)
		}
		if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
			t.Errorf("seed %d: structural: %v", seed, err)
			continue
		}
		trips := []int64{1, int64(c.Stages), int64(c.Stages) + 3, 29}
		if err := verify.Kernel(c.Loop(), c.Program, verify.Config{InitMem: g.memInit, Trips: trips}); err != nil {
			t.Errorf("seed %d: oracle: %v", seed, err)
		}
	}
}

// TestReferenceRejectsUnknownOp: the reference interpreter reports an
// error (rather than panicking) for an op it cannot execute.
func TestReferenceRejectsUnknownOp(t *testing.T) {
	l := ir.NewLoop("bad")
	b := l.NewGR()
	l.Append(ir.St(b, b, 8, 8))
	l.Body[0].Op = ir.Op(250)
	l.Init(b, 0x100000)
	p := &interp.Program{Name: "bad", Groups: [][]*ir.Instr{{l.Body[0]}}}
	err := verify.Kernel(l, p, verify.Config{Trips: []int64{1}})
	if err == nil || !strings.Contains(err.Error(), "cannot execute") {
		t.Fatalf("want reference execution error, got %v", err)
	}
}
