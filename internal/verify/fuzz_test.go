package verify_test

import (
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/machine"
	"ltsp/internal/verify"
)

// FuzzVerifyKernel exercises the trust-but-verify contract end to end on
// fuzzed random loops: a fresh compilation must be accepted by both the
// structural verifier and the semantic oracle, and a corrupted schedule
// must never panic the verifier (it is allowed to reject or, for
// resource-only moves, accept — what matters is a structured answer).
func FuzzVerifyKernel(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(3))
	f.Add(int64(42), uint8(9))
	f.Add(int64(-11), uint8(255))
	m := machine.Itanium2()
	f.Fuzz(func(t *testing.T, seed int64, mut uint8) {
		g := newRandLoop(seed, int(mut%12)+2)
		c, err := core.Pipeline(g.l.Clone(), core.Options{
			LatencyTolerant: seed%2 == 0,
			BoostDelinquent: seed%4 == 0,
		})
		if err != nil {
			t.Skip()
		}
		if c.Schedule != nil {
			if err := verify.Schedule(m, c.Loop(), c.Schedule, c.Assignment); err != nil {
				t.Fatalf("seed %d: verifier rejected a fresh schedule: %v", seed, err)
			}
		}
		trips := []int64{1, int64(c.Stages) + 2}
		if err := verify.Kernel(c.Loop(), c.Program, verify.Config{
			Seed: seed, InitMem: g.memInit, Trips: trips,
		}); err != nil {
			t.Fatalf("seed %d: oracle rejected a fresh kernel: %v", seed, err)
		}

		if c.Schedule == nil || len(c.Schedule.Time) == 0 {
			return
		}
		// Move one op by one kernel row; the verifier must handle the
		// corruption without panicking.
		bad := *c.Schedule
		bad.Time = append([]int(nil), c.Schedule.Time...)
		bad.Time[int(mut)%len(bad.Time)]++
		maxT := 0
		for _, tt := range bad.Time {
			if tt > maxT {
				maxT = tt
			}
		}
		bad.Stages = maxT/bad.II + 1
		_ = verify.Schedule(m, c.Loop(), &bad, c.Assignment)
	})
}
