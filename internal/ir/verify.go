package ir

import (
	"errors"
	"fmt"
)

// opShape describes operand-count expectations for verification.
type opShape struct {
	nDst, nSrc int
	dstClass   []RegClass // expected class per dst; ClassNone = any
	srcClass   []RegClass
	needsMem   bool
}

var shapes = map[Op]opShape{
	OpNop:     {0, 0, nil, nil, false},
	OpMovI:    {1, 0, []RegClass{ClassGR}, nil, false},
	OpMov:     {1, 1, []RegClass{ClassGR}, []RegClass{ClassGR}, false},
	OpAdd:     {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpSub:     {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpAddI:    {1, 1, []RegClass{ClassGR}, []RegClass{ClassGR}, false},
	OpAnd:     {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpOr:      {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpXor:     {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpShlI:    {1, 1, []RegClass{ClassGR}, []RegClass{ClassGR}, false},
	OpShrI:    {1, 1, []RegClass{ClassGR}, []RegClass{ClassGR}, false},
	OpShladd:  {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpMul:     {1, 2, []RegClass{ClassGR}, []RegClass{ClassGR, ClassGR}, false},
	OpCmpEq:   {2, 2, []RegClass{ClassPR, ClassPR}, []RegClass{ClassGR, ClassGR}, false},
	OpCmpLt:   {2, 2, []RegClass{ClassPR, ClassPR}, []RegClass{ClassGR, ClassGR}, false},
	OpCmpEqI:  {2, 1, []RegClass{ClassPR, ClassPR}, []RegClass{ClassGR}, false},
	OpCmpLtI:  {2, 1, []RegClass{ClassPR, ClassPR}, []RegClass{ClassGR}, false},
	OpFMovI:   {1, 0, []RegClass{ClassFR}, nil, false},
	OpFMov:    {1, 1, []RegClass{ClassFR}, []RegClass{ClassFR}, false},
	OpFAdd:    {1, 2, []RegClass{ClassFR}, []RegClass{ClassFR, ClassFR}, false},
	OpFSub:    {1, 2, []RegClass{ClassFR}, []RegClass{ClassFR, ClassFR}, false},
	OpFMul:    {1, 2, []RegClass{ClassFR}, []RegClass{ClassFR, ClassFR}, false},
	OpFMA:     {1, 3, []RegClass{ClassFR}, []RegClass{ClassFR, ClassFR, ClassFR}, false},
	OpFCmpLt:  {2, 2, []RegClass{ClassPR, ClassPR}, []RegClass{ClassFR, ClassFR}, false},
	OpGetF:    {1, 1, []RegClass{ClassGR}, []RegClass{ClassFR}, false},
	OpSetF:    {1, 1, []RegClass{ClassFR}, []RegClass{ClassGR}, false},
	OpSel:     {1, 3, []RegClass{ClassGR}, []RegClass{ClassPR, ClassGR, ClassGR}, false},
	OpFSel:    {1, 3, []RegClass{ClassFR}, []RegClass{ClassPR, ClassFR, ClassFR}, false},
	OpChk:     {0, 1, nil, []RegClass{ClassNone}, false}, // target may be GR or FR
	OpLd:      {1, 1, []RegClass{ClassGR}, []RegClass{ClassGR}, true},
	OpLdF:     {1, 1, []RegClass{ClassFR}, []RegClass{ClassGR}, true},
	OpSt:      {0, 2, nil, []RegClass{ClassGR, ClassGR}, true},
	OpStF:     {0, 2, nil, []RegClass{ClassFR, ClassGR}, true},
	OpLfetch:  {0, 1, nil, []RegClass{ClassGR}, true},
	OpBrCloop: {0, 0, nil, nil, false},
	OpBrCtop:  {0, 0, nil, nil, false},
}

// Verify checks structural wellformedness of the loop: opcode operand
// shapes, register classes, memory descriptors, predicate classes, in-range
// IDs in memory dependences, and that no instruction is a loop branch
// (branches are implicit in Loop). It returns the first problem found.
func (l *Loop) Verify() error {
	if len(l.Body) == 0 {
		return errors.New("ir: empty loop body")
	}
	for i, in := range l.Body {
		if in.ID != i {
			return fmt.Errorf("ir: %s body[%d] has ID %d", l.Name, i, in.ID)
		}
		if in.Op.IsBranch() {
			return fmt.Errorf("ir: %s body[%d]: loop branches are implicit, found %s", l.Name, i, in.Op)
		}
		if err := in.verify(); err != nil {
			return fmt.Errorf("ir: %s body[%d] (%s): %w", l.Name, i, in, err)
		}
	}
	if l.While != nil {
		if err := l.verifyWhile(); err != nil {
			return err
		}
	}
	for _, d := range l.MemDeps {
		if d.From < 0 || d.From >= len(l.Body) || d.To < 0 || d.To >= len(l.Body) {
			return fmt.Errorf("ir: %s memdep %d->%d out of range", l.Name, d.From, d.To)
		}
		if !l.Body[d.From].Op.IsMem() || !l.Body[d.To].Op.IsMem() {
			return fmt.Errorf("ir: %s memdep %d->%d endpoints not memory ops", l.Name, d.From, d.To)
		}
		if d.Distance < 0 {
			return fmt.Errorf("ir: %s memdep %d->%d negative distance", l.Name, d.From, d.To)
		}
	}
	return nil
}

// verifyWhile checks the while-loop shape: the validity predicate is a
// virtual PR defined by a compare, initialized on entry, and qualifies
// every body instruction (so iterations past the exit shut off).
func (l *Loop) verifyWhile() error {
	cond := l.While.Cond
	if cond.Class != ClassPR || !cond.Virtual {
		return fmt.Errorf("ir: %s: while condition %s is not a virtual predicate", l.Name, cond)
	}
	if _, ok := l.InitValue(cond); !ok {
		return fmt.Errorf("ir: %s: while condition %s has no initial value", l.Name, cond)
	}
	defBy := -1
	for i, in := range l.Body {
		for _, d := range in.Dsts {
			if d == cond {
				defBy = i
			}
		}
	}
	if defBy < 0 {
		return fmt.Errorf("ir: %s: while condition %s never defined", l.Name, cond)
	}
	if defBy != len(l.Body)-1 {
		return fmt.Errorf("ir: %s: the while condition must be computed by the last body instruction (found at %d)",
			l.Name, defBy)
	}
	switch l.Body[defBy].Op {
	case OpCmpEq, OpCmpLt, OpCmpEqI, OpCmpLtI, OpFCmpLt:
	default:
		return fmt.Errorf("ir: %s: while condition defined by %v, want a compare", l.Name, l.Body[defBy].Op)
	}
	for i, in := range l.Body {
		if in.Pred != cond {
			return fmt.Errorf("ir: %s: body[%d] not qualified by the while condition", l.Name, i)
		}
	}
	return nil
}

func (in *Instr) verify() error {
	sh, ok := shapes[in.Op]
	if !ok {
		return fmt.Errorf("unknown opcode %v", in.Op)
	}
	if len(in.Dsts) != sh.nDst {
		return fmt.Errorf("want %d dsts, have %d", sh.nDst, len(in.Dsts))
	}
	if len(in.Srcs) != sh.nSrc {
		return fmt.Errorf("want %d srcs, have %d", sh.nSrc, len(in.Srcs))
	}
	for i, d := range in.Dsts {
		// Compares may leave one predicate destination unset.
		if d.IsNone() && d.Class == ClassNone && (in.Op == OpCmpEq || in.Op == OpCmpLt || in.Op == OpCmpEqI || in.Op == OpCmpLtI || in.Op == OpFCmpLt) {
			continue
		}
		if sh.dstClass[i] != ClassNone && d.Class != sh.dstClass[i] {
			return fmt.Errorf("dst %d: want class %v, have %v", i, sh.dstClass[i], d.Class)
		}
	}
	for i, s := range in.Srcs {
		if sh.srcClass[i] != ClassNone && s.Class != sh.srcClass[i] {
			return fmt.Errorf("src %d: want class %v, have %v", i, sh.srcClass[i], s.Class)
		}
	}
	if sh.needsMem {
		if in.Mem == nil {
			return errors.New("memory op without MemRef")
		}
		switch in.Mem.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("bad access size %d", in.Mem.Size)
		}
	} else if in.Mem != nil {
		return errors.New("non-memory op with MemRef")
	}
	if !in.Pred.IsNone() && in.Pred.Class != ClassPR {
		return fmt.Errorf("qualifying predicate has class %v", in.Pred.Class)
	}
	return nil
}
