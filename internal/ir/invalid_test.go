package ir_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ltsp/internal/ir"
)

// encode marshals a loop without the decode-side validation (EncodeLoop
// is purely syntactic), producing wire bytes for adversarial decoding.
func encode(t *testing.T, l *ir.Loop) []byte {
	t.Helper()
	data, err := ir.EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func validSmallLoop() *ir.Loop {
	l := ir.NewLoop("ok")
	v, b := l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Init(b, 0x100000)
	l.LiveOut = []ir.Reg{b}
	return l
}

// TestDecodeRejectsAdversarialLoops feeds syntactically valid but
// semantically broken loops through the wire codec and checks each comes
// back as a structured *InvalidLoopError instead of flowing on to code
// that would panic.
func TestDecodeRejectsAdversarialLoops(t *testing.T) {
	cases := []struct {
		name string
		l    *ir.Loop
		want string // substring of the validation message
	}{
		{
			name: "duplicate-virtual-def",
			l: func() *ir.Loop {
				l := ir.NewLoop("dup")
				r := l.NewGR()
				l.Append(ir.MovI(r, 1))
				l.Append(ir.MovI(r, 2))
				l.LiveOut = []ir.Reg{r}
				return l
			}(),
			want: "single definition",
		},
		{
			name: "duplicate-postinc-base-def",
			l: func() *ir.Loop {
				l := ir.NewLoop("dupbase")
				v, b := l.NewGR(), l.NewGR()
				l.Append(ir.Ld(v, b, 4, 4))
				l.Append(ir.AddI(b, b, 8))
				l.LiveOut = []ir.Reg{v}
				return l
			}(),
			want: "single definition",
		},
		{
			name: "negative-memdep-distance",
			l: func() *ir.Loop {
				l := validSmallLoop()
				l.MemDeps = []ir.MemDep{{From: 0, To: 0, Distance: -3}}
				return l
			}(),
			want: "",
		},
		{
			name: "memdep-out-of-range",
			l: func() *ir.Loop {
				l := validSmallLoop()
				l.MemDeps = []ir.MemDep{{From: 0, To: 99}}
				return l
			}(),
			want: "",
		},
		{
			name: "physical-gr-outside-file",
			l: func() *ir.Loop {
				l := validSmallLoop()
				l.Body[0].Srcs[0] = ir.Reg{Class: ir.ClassGR, N: 4096}
				return l
			}(),
			want: "file",
		},
		{
			name: "physical-pr-outside-file",
			l: func() *ir.Loop {
				l := validSmallLoop()
				l.Body[0].Pred = ir.Reg{Class: ir.ClassPR, N: 64}
				return l
			}(),
			want: "file",
		},
		{
			name: "virtual-id-absurd",
			l: func() *ir.Loop {
				l := validSmallLoop()
				l.LiveOut = append(l.LiveOut, ir.VGR(1<<24))
				return l
			}(),
			want: "exceeds limit",
		},
		{
			name: "empty-body",
			l: func() *ir.Loop {
				return ir.NewLoop("empty")
			}(),
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ir.DecodeLoop(encode(t, tc.l))
			if err == nil {
				t.Fatal("adversarial loop decoded without error")
			}
			var inv *ir.InvalidLoopError
			if !errors.As(err, &inv) {
				t.Fatalf("error is %T (%v), want *ir.InvalidLoopError", err, err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateSemanticsNonFinite covers the non-finite constant checks
// directly (encoding/json cannot transport NaN/Inf, so these are
// unreachable through the wire but guard in-process callers).
func TestValidateSemanticsNonFinite(t *testing.T) {
	l := ir.NewLoop("nan")
	f := l.NewFR()
	l.Append(ir.FMovI(f, math.NaN()))
	l.LiveOut = []ir.Reg{f}
	if err := ir.ValidateSemantics(l); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN immediate: err = %v", err)
	}

	l2 := validSmallLoop()
	l2.InitF(l2.NewFR(), math.Inf(1))
	if err := ir.ValidateSemantics(l2); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Inf setup value: err = %v", err)
	}
}

// TestValidateSemanticsBodyCap: absurdly long bodies are rejected before
// quadratic analyses run over them.
func TestValidateSemanticsBodyCap(t *testing.T) {
	l := ir.NewLoop("huge")
	b := l.NewGR()
	for i := 0; i < 5000; i++ {
		v := l.NewGR()
		l.Append(ir.MovI(v, int64(i)))
		_ = v
	}
	l.Init(b, 0)
	if err := ir.ValidateSemantics(l); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("5000-instruction body: err = %v", err)
	}
}

// TestDecodeAcceptsValidLoop: the validation pass does not reject the
// loops the rest of the suite round-trips.
func TestDecodeAcceptsValidLoop(t *testing.T) {
	if _, err := ir.DecodeLoop(encode(t, validSmallLoop())); err != nil {
		t.Fatalf("valid loop rejected: %v", err)
	}
}
