package ir

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// WireVersion is the version tag of the loop wire format. Decoders reject
// encodings with a different version; bump it on any change that alters
// the canonical byte encoding of an existing loop (field renames,
// reordering, representation changes), since the content hash — the
// artifact-cache key — is defined over these bytes.
const WireVersion = 1

// The wire format is a canonical JSON encoding: a fixed field order (Go
// struct order), compact separators, zero-valued fields omitted, and
// registers rendered in their assembly spelling ("r32", "vf3", "-").
// Canonicality is what makes the content hash stable: for any loop,
// Encode(Decode(Encode(l))) == Encode(l) byte for byte.

type loopWire struct {
	Version int           `json:"v"`
	Name    string        `json:"name,omitempty"`
	Body    []instrWire   `json:"body"`
	Setup   []regInitWire `json:"setup,omitempty"`
	LiveOut []string      `json:"liveOut,omitempty"`
	MemDeps []memDepWire  `json:"memDeps,omitempty"`
	While   *whileWire    `json:"while,omitempty"`
}

type instrWire struct {
	Op      string   `json:"op"`
	Pred    string   `json:"pred,omitempty"`
	Dsts    []string `json:"dsts,omitempty"`
	Srcs    []string `json:"srcs,omitempty"`
	Imm     int64    `json:"imm,omitempty"`
	FImm    float64  `json:"fimm,omitempty"`
	Mem     *memWire `json:"mem,omitempty"`
	Comment string   `json:"comment,omitempty"`
}

type memWire struct {
	Size             int    `json:"size,omitempty"`
	PostInc          int64  `json:"postInc,omitempty"`
	Stride           string `json:"stride,omitempty"`
	StrideBytes      int64  `json:"strideBytes,omitempty"`
	Hint             string `json:"hint,omitempty"`
	Delinquent       bool   `json:"delinquent,omitempty"`
	Prefetched       bool   `json:"prefetched,omitempty"`
	PrefetchDistance int    `json:"prefetchDistance,omitempty"`
	Group            int    `json:"group,omitempty"`
	LineLeader       bool   `json:"lineLeader,omitempty"`
	IndexInit        int64  `json:"indexInit,omitempty"`
	IndexStride      int64  `json:"indexStride,omitempty"`
	IndexSize        int    `json:"indexSize,omitempty"`
	ScaleShift       int64  `json:"scaleShift,omitempty"`
	ArrayBase        string `json:"arrayBase,omitempty"`
}

type regInitWire struct {
	Reg  string  `json:"reg"`
	Val  int64   `json:"val,omitempty"`
	FVal float64 `json:"fval,omitempty"`
}

type memDepWire struct {
	From     int  `json:"from,omitempty"`
	To       int  `json:"to,omitempty"`
	Distance int  `json:"distance,omitempty"`
	Latency  int  `json:"latency,omitempty"`
	MayAlias bool `json:"mayAlias,omitempty"`
}

type whileWire struct {
	Cond string `json:"cond"`
}

// opByName maps the assembly mnemonic back to the opcode.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := Op(0); op < opMax; op++ {
		if int(op) < len(opNames) && opNames[op] != "" {
			m[opNames[op]] = op
		}
	}
	return m
}()

var strideByName = func() map[string]StrideKind {
	m := make(map[string]StrideKind)
	for s := StrideUnknown; s <= StrideInvariant; s++ {
		m[s.String()] = s
	}
	return m
}()

var hintByName = map[string]Hint{
	"none": HintNone, "L2": HintL2, "L3": HintL3,
}

func encodeReg(r Reg) string {
	if r.IsNone() {
		return ""
	}
	return r.String()
}

func decodeReg(s string) (Reg, error) {
	if s == "" || s == "-" {
		return None, nil
	}
	virt := false
	if strings.HasPrefix(s, "v") {
		virt = true
		s = s[1:]
	}
	if len(s) < 2 {
		return None, fmt.Errorf("ir: malformed register %q", s)
	}
	var class RegClass
	switch s[0] {
	case 'r':
		class = ClassGR
	case 'f':
		class = ClassFR
	case 'p':
		class = ClassPR
	default:
		return None, fmt.Errorf("ir: unknown register class in %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return None, fmt.Errorf("ir: malformed register number in %q", s)
	}
	return Reg{Class: class, N: n, Virtual: virt}, nil
}

func encodeRegs(rs []Reg) []string {
	if len(rs) == 0 {
		return nil
	}
	out := make([]string, len(rs))
	for i, r := range rs {
		// Inside operand lists None must stay positionally visible
		// (e.g. the unused arm of a two-destination compare), so it is
		// spelled "-" rather than omitted.
		if r.IsNone() {
			out[i] = "-"
		} else {
			out[i] = r.String()
		}
	}
	return out
}

func decodeRegs(ss []string) ([]Reg, error) {
	if len(ss) == 0 {
		return nil, nil
	}
	out := make([]Reg, len(ss))
	for i, s := range ss {
		r, err := decodeReg(s)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func encodeMem(m *MemRef) *memWire {
	if m == nil {
		return nil
	}
	w := &memWire{
		Size:             m.Size,
		PostInc:          m.PostInc,
		StrideBytes:      m.StrideBytes,
		Delinquent:       m.Delinquent,
		Prefetched:       m.Prefetched,
		PrefetchDistance: m.PrefetchDistance,
		Group:            m.Group,
		LineLeader:       m.LineLeader,
		IndexInit:        m.IndexInit,
		IndexStride:      m.IndexStride,
		IndexSize:        m.IndexSize,
		ScaleShift:       m.ScaleShift,
		ArrayBase:        encodeReg(m.ArrayBase),
	}
	if m.Stride != StrideUnknown {
		w.Stride = m.Stride.String()
	}
	if m.Hint != HintNone {
		w.Hint = m.Hint.String()
	}
	return w
}

func decodeMem(w *memWire) (*MemRef, error) {
	if w == nil {
		return nil, nil
	}
	m := &MemRef{
		Size:             w.Size,
		PostInc:          w.PostInc,
		StrideBytes:      w.StrideBytes,
		Delinquent:       w.Delinquent,
		Prefetched:       w.Prefetched,
		PrefetchDistance: w.PrefetchDistance,
		Group:            w.Group,
		LineLeader:       w.LineLeader,
		IndexInit:        w.IndexInit,
		IndexStride:      w.IndexStride,
		IndexSize:        w.IndexSize,
		ScaleShift:       w.ScaleShift,
	}
	if w.Stride != "" {
		s, ok := strideByName[w.Stride]
		if !ok {
			return nil, fmt.Errorf("ir: unknown stride kind %q", w.Stride)
		}
		m.Stride = s
	}
	if w.Hint != "" {
		h, ok := hintByName[w.Hint]
		if !ok {
			return nil, fmt.Errorf("ir: unknown hint %q", w.Hint)
		}
		m.Hint = h
	}
	base, err := decodeReg(w.ArrayBase)
	if err != nil {
		return nil, err
	}
	m.ArrayBase = base
	return m, nil
}

// EncodeLoop renders the loop in the canonical versioned JSON wire format.
func EncodeLoop(l *Loop) ([]byte, error) {
	w := loopWire{
		Version: WireVersion,
		Name:    l.Name,
		Body:    make([]instrWire, len(l.Body)),
	}
	for i, in := range l.Body {
		iw := instrWire{
			Op:      in.Op.String(),
			Pred:    encodeReg(in.Pred),
			Dsts:    encodeRegs(in.Dsts),
			Srcs:    encodeRegs(in.Srcs),
			Imm:     in.Imm,
			FImm:    in.FImm,
			Mem:     encodeMem(in.Mem),
			Comment: in.Comment,
		}
		if _, ok := opByName[iw.Op]; !ok {
			return nil, fmt.Errorf("ir: body[%d]: opcode %v has no wire name", i, in.Op)
		}
		w.Body[i] = iw
	}
	for _, s := range l.Setup {
		w.Setup = append(w.Setup, regInitWire{Reg: s.Reg.String(), Val: s.Val, FVal: s.FVal})
	}
	for _, r := range l.LiveOut {
		w.LiveOut = append(w.LiveOut, r.String())
	}
	for _, d := range l.MemDeps {
		w.MemDeps = append(w.MemDeps, memDepWire{
			From: d.From, To: d.To, Distance: d.Distance,
			Latency: d.Latency, MayAlias: d.MayAlias,
		})
	}
	if l.While != nil {
		w.While = &whileWire{Cond: l.While.Cond.String()}
	}
	return json.Marshal(w)
}

// DecodeLoop parses a wire-format loop. The loop builder's virtual register
// counters are rebuilt from the highest virtual id in use, so passes that
// allocate fresh registers on the decoded loop (the HLO prefetcher, the
// if-converter) never collide with existing operands.
func DecodeLoop(data []byte) (*Loop, error) {
	var w loopWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("ir: decode loop: %w", err)
	}
	if w.Version != WireVersion {
		return nil, fmt.Errorf("ir: unsupported wire version %d (want %d)", w.Version, WireVersion)
	}
	l := NewLoop(w.Name)
	for i, iw := range w.Body {
		op, ok := opByName[iw.Op]
		if !ok {
			return nil, fmt.Errorf("ir: body[%d]: unknown opcode %q", i, iw.Op)
		}
		pred, err := decodeReg(iw.Pred)
		if err != nil {
			return nil, fmt.Errorf("ir: body[%d]: %w", i, err)
		}
		dsts, err := decodeRegs(iw.Dsts)
		if err != nil {
			return nil, fmt.Errorf("ir: body[%d]: %w", i, err)
		}
		srcs, err := decodeRegs(iw.Srcs)
		if err != nil {
			return nil, fmt.Errorf("ir: body[%d]: %w", i, err)
		}
		mem, err := decodeMem(iw.Mem)
		if err != nil {
			return nil, fmt.Errorf("ir: body[%d]: %w", i, err)
		}
		l.Append(&Instr{
			Op: op, Pred: pred, Dsts: dsts, Srcs: srcs,
			Imm: iw.Imm, FImm: iw.FImm, Mem: mem, Comment: iw.Comment,
		})
	}
	for _, sw := range w.Setup {
		r, err := decodeReg(sw.Reg)
		if err != nil {
			return nil, fmt.Errorf("ir: setup: %w", err)
		}
		l.Setup = append(l.Setup, RegInit{Reg: r, Val: sw.Val, FVal: sw.FVal})
	}
	for _, s := range w.LiveOut {
		r, err := decodeReg(s)
		if err != nil {
			return nil, fmt.Errorf("ir: liveOut: %w", err)
		}
		l.LiveOut = append(l.LiveOut, r)
	}
	for _, dw := range w.MemDeps {
		l.MemDeps = append(l.MemDeps, MemDep{
			From: dw.From, To: dw.To, Distance: dw.Distance,
			Latency: dw.Latency, MayAlias: dw.MayAlias,
		})
	}
	if w.While != nil {
		r, err := decodeReg(w.While.Cond)
		if err != nil {
			return nil, fmt.Errorf("ir: while: %w", err)
		}
		l.While = &WhileInfo{Cond: r}
	}
	l.rebuildVirtCounters()
	if err := ValidateSemantics(l); err != nil {
		return nil, &InvalidLoopError{Err: err}
	}
	return l, nil
}

// rebuildVirtCounters sets each class's next-virtual-id counter past the
// highest virtual register mentioned anywhere in the loop.
func (l *Loop) rebuildVirtCounters() {
	note := func(r Reg) {
		if r.Virtual && r.N >= l.nextVirt[r.Class] {
			l.nextVirt[r.Class] = r.N + 1
		}
	}
	for _, in := range l.Body {
		note(in.Pred)
		for _, r := range in.Dsts {
			note(r)
		}
		for _, r := range in.Srcs {
			note(r)
		}
		if in.Mem != nil {
			note(in.Mem.ArrayBase)
		}
	}
	for _, s := range l.Setup {
		note(s.Reg)
	}
	for _, r := range l.LiveOut {
		note(r)
	}
	if l.While != nil {
		note(l.While.Cond)
	}
}

// OpByName resolves an assembly mnemonic to its opcode. Alternate wire
// codecs (internal/wire/binary) intern mnemonic strings and resolve them
// through this same table, so opcode numbering can never drift between
// encodings even if Op values are renumbered.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// StrideKindByName resolves a stride-kind wire spelling.
func StrideKindByName(name string) (StrideKind, bool) {
	s, ok := strideByName[name]
	return s, ok
}

// HintByName resolves a cache-hint wire spelling.
func HintByName(name string) (Hint, bool) {
	h, ok := hintByName[name]
	return h, ok
}

// FinishDecodedLoop completes a loop assembled by an alternate decoder:
// it rebuilds the virtual-register counters and validates semantics,
// exactly the epilogue DecodeLoop runs after JSON parsing. Every decoder
// must call it so that no wire format can smuggle in a loop the JSON
// path would reject.
func FinishDecodedLoop(l *Loop) error {
	l.rebuildVirtCounters()
	if err := ValidateSemantics(l); err != nil {
		return &InvalidLoopError{Err: err}
	}
	return nil
}

// LoopHash returns the content hash of the loop: the hex sha256 of its
// canonical wire encoding. Two loops hash equal iff their canonical
// encodings are byte-identical; the artifact cache of the ltspd service
// keys compiled schedules by this value (combined with the compile
// options, see internal/wire).
func LoopHash(l *Loop) (string, error) {
	data, err := EncodeLoop(l)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
