package ir

import (
	"strings"
	"testing"
)

func validLoop() *Loop {
	l := NewLoop("v")
	d, b := l.NewGR(), l.NewGR()
	l.Init(b, 0x1000)
	l.Append(Ld(d, b, 4, 4))
	l.Append(Add(l.NewGR(), d, d))
	return l
}

func TestVerifyOK(t *testing.T) {
	if err := validLoop().Verify(); err != nil {
		t.Fatalf("valid loop rejected: %v", err)
	}
}

func TestVerifyEmptyLoop(t *testing.T) {
	if err := NewLoop("e").Verify(); err == nil {
		t.Error("empty loop accepted")
	}
}

func TestVerifyRejectsBranchInBody(t *testing.T) {
	l := validLoop()
	l.Append(&Instr{Op: OpBrCtop})
	if err := l.Verify(); err == nil || !strings.Contains(err.Error(), "implicit") {
		t.Errorf("branch in body accepted: %v", err)
	}
}

func TestVerifyOperandCounts(t *testing.T) {
	l := NewLoop("t")
	a := l.NewGR()
	l.Append(&Instr{Op: OpAdd, Dsts: []Reg{a}, Srcs: []Reg{a}}) // one src missing
	if err := l.Verify(); err == nil {
		t.Error("short-operand add accepted")
	}
}

func TestVerifyOperandClasses(t *testing.T) {
	l := NewLoop("t")
	f := l.NewFR()
	g := l.NewGR()
	l.Append(&Instr{Op: OpAdd, Dsts: []Reg{g}, Srcs: []Reg{f, g}})
	if err := l.Verify(); err == nil {
		t.Error("FP source on integer add accepted")
	}
}

func TestVerifyMemShape(t *testing.T) {
	l := NewLoop("t")
	d, b := l.NewGR(), l.NewGR()
	l.Append(&Instr{Op: OpLd, Dsts: []Reg{d}, Srcs: []Reg{b}}) // no MemRef
	if err := l.Verify(); err == nil {
		t.Error("load without MemRef accepted")
	}

	l2 := NewLoop("t2")
	a := l2.NewGR()
	in := Add(a, a, a)
	in.Mem = &MemRef{Size: 4}
	l2.Append(in)
	if err := l2.Verify(); err == nil {
		t.Error("ALU op with MemRef accepted")
	}

	l3 := NewLoop("t3")
	d3, b3 := l3.NewGR(), l3.NewGR()
	bad := Ld(d3, b3, 4, 0)
	bad.Mem.Size = 3
	l3.Append(bad)
	if err := l3.Verify(); err == nil {
		t.Error("3-byte access accepted")
	}
}

func TestVerifyPredicateClass(t *testing.T) {
	l := NewLoop("t")
	a := l.NewGR()
	l.Append(Predicated(a, Add(l.NewGR(), a, a))) // GR as predicate
	if err := l.Verify(); err == nil {
		t.Error("GR qualifying predicate accepted")
	}
}

func TestVerifyCompareAllowsOneNoneDst(t *testing.T) {
	l := NewLoop("t")
	a := l.NewGR()
	p := l.NewPR()
	l.Init(a, 0)
	l.Append(CmpEqI(p, None, a, 3))
	if err := l.Verify(); err != nil {
		t.Errorf("compare with one None destination rejected: %v", err)
	}
}

func TestVerifyMemDeps(t *testing.T) {
	l := validLoop()
	l.MemDeps = []MemDep{{From: 0, To: 99, Distance: 0}}
	if err := l.Verify(); err == nil {
		t.Error("out-of-range memdep accepted")
	}
	l.MemDeps = []MemDep{{From: 0, To: 1, Distance: 0}}
	if err := l.Verify(); err == nil {
		t.Error("memdep to non-memory op accepted")
	}
	l.MemDeps = []MemDep{{From: 0, To: 0, Distance: -1}}
	if err := l.Verify(); err == nil {
		t.Error("negative-distance memdep accepted")
	}
}

func TestVerifyIDMismatch(t *testing.T) {
	l := validLoop()
	l.Body[1].ID = 5
	if err := l.Verify(); err == nil {
		t.Error("ID mismatch accepted")
	}
}
