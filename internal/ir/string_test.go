package ir

import (
	"strings"
	"testing"
)

// TestAllOpcodesNamed sweeps every opcode: each must have a distinct
// non-placeholder mnemonic and a consistent classification.
func TestAllOpcodesNamed(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNop; op < opMax; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", name, prev, op)
		}
		seen[name] = op
		// Exclusive classes.
		n := 0
		if op.IsLoad() {
			n++
		}
		if op.IsStore() {
			n++
		}
		if op.IsBranch() {
			n++
		}
		if n > 1 {
			t.Errorf("%v is in multiple exclusive classes", op)
		}
		if (op.IsLoad() || op.IsStore()) && !op.IsMem() {
			t.Errorf("%v loads/stores but is not memory", op)
		}
	}
	if op := Op(200).String(); !strings.HasPrefix(op, "op(") {
		t.Errorf("unknown opcode string = %q", op)
	}
}

// TestAllShapedOpsHaveSemantics builds a minimal valid instruction for
// every shaped opcode and checks the printer produces something sane.
func TestAllShapedOpsPrint(t *testing.T) {
	mk := func(class RegClass, n int) Reg { return Reg{Class: class, N: n} }
	for op, sh := range shapes {
		in := &Instr{Op: op}
		for i := 0; i < sh.nDst; i++ {
			c := ClassGR
			if sh.dstClass != nil {
				c = sh.dstClass[i]
			}
			in.Dsts = append(in.Dsts, mk(c, 10+i))
		}
		for i := 0; i < sh.nSrc; i++ {
			c := ClassGR
			if sh.srcClass != nil && sh.srcClass[i] != ClassNone {
				c = sh.srcClass[i]
			}
			in.Srcs = append(in.Srcs, mk(c, 20+i))
		}
		if sh.needsMem {
			in.Mem = &MemRef{Size: 8, PostInc: 8}
		}
		if s := in.String(); s == "" {
			t.Errorf("%v prints empty", op)
		}
		if op.IsBranch() {
			continue // implicit; never verified inside bodies
		}
		if err := in.verify(); err != nil {
			t.Errorf("canonical %v does not verify: %v", op, err)
		}
	}
}

// TestSelChkBuilders covers the merge/check constructors.
func TestSelChkBuilders(t *testing.T) {
	s := Sel(VGR(0), VPR(1), VGR(2), VGR(3))
	if s.Op != OpSel || len(s.Srcs) != 3 || s.Srcs[0].Class != ClassPR {
		t.Errorf("Sel = %v", s)
	}
	f := FSel(VFR(0), VPR(1), VFR(2), VFR(3))
	if f.Op != OpFSel || !f.Op.IsFP() {
		t.Errorf("FSel = %v", f)
	}
	c := Chk(VGR(5))
	if c.Op != OpChk || len(c.Srcs) != 1 {
		t.Errorf("Chk = %v", c)
	}
	if !strings.Contains(c.String(), "chk.a") {
		t.Errorf("Chk prints %q", c)
	}
}

// TestWhileVerify covers the while-loop shape checks.
func TestWhileVerify(t *testing.T) {
	mkWhile := func(mutate func(*Loop)) error {
		l := NewLoop("w")
		pv := l.NewPR()
		p := l.NewGR()
		l.Append(Predicated(pv, Ld(p, p, 8, 0)))
		l.Append(Predicated(pv, CmpEqI(None, pv, p, 0)))
		l.While = &WhileInfo{Cond: pv}
		l.Init(pv, 1)
		l.Init(p, 0x1000)
		if mutate != nil {
			mutate(l)
		}
		return l.Verify()
	}
	if err := mkWhile(nil); err != nil {
		t.Errorf("valid while loop rejected: %v", err)
	}
	if err := mkWhile(func(l *Loop) { l.While.Cond = l.NewGR() }); err == nil {
		t.Error("GR while condition accepted")
	}
	if err := mkWhile(func(l *Loop) { l.Setup = nil }); err == nil {
		t.Error("uninitialized while condition accepted")
	}
	if err := mkWhile(func(l *Loop) { l.Body[1].Dsts[1] = l.NewPR() }); err == nil {
		t.Error("undefined while condition accepted")
	}
	if err := mkWhile(func(l *Loop) { l.Body[0].Pred = None }); err == nil {
		t.Error("unqualified body instruction accepted")
	}
	if err := mkWhile(func(l *Loop) {
		// Condition compare not last.
		l.Body[0], l.Body[1] = l.Body[1], l.Body[0]
		l.Body[0].ID, l.Body[1].ID = 0, 1
	}); err == nil {
		t.Error("non-trailing condition compare accepted")
	}
}
