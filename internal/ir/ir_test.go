package ir

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{GR(32), "r32"},
		{FR(2), "f2"},
		{PR(16), "p16"},
		{VGR(7), "vr7"},
		{VFR(0), "vf0"},
		{VPR(3), "vp3"},
		{None, "-"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestRegIsNone(t *testing.T) {
	if !None.IsNone() {
		t.Error("None.IsNone() = false")
	}
	if GR(0).IsNone() {
		t.Error("GR(0).IsNone() = true")
	}
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                             Op
		load, store, mem, branch, isFP bool
	}{
		{OpLd, true, false, true, false, false},
		{OpLdF, true, false, true, false, false}, // FP load executes on M port
		{OpSt, false, true, true, false, false},
		{OpStF, false, true, true, false, false},
		{OpLfetch, false, false, true, false, false},
		{OpBrCtop, false, false, false, true, false},
		{OpBrCloop, false, false, false, true, false},
		{OpAdd, false, false, false, false, false},
		{OpFMA, false, false, false, false, true},
		{OpMul, false, false, false, false, true}, // integer multiply is FP-unit work
		{OpSetF, false, false, false, false, true},
	}
	for _, tt := range tests {
		if got := tt.op.IsLoad(); got != tt.load {
			t.Errorf("%v.IsLoad() = %v", tt.op, got)
		}
		if got := tt.op.IsStore(); got != tt.store {
			t.Errorf("%v.IsStore() = %v", tt.op, got)
		}
		if got := tt.op.IsMem(); got != tt.mem {
			t.Errorf("%v.IsMem() = %v", tt.op, got)
		}
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%v.IsBranch() = %v", tt.op, got)
		}
		if got := tt.op.IsFP(); got != tt.isFP {
			t.Errorf("%v.IsFP() = %v", tt.op, got)
		}
	}
}

func TestHintAndStrideStrings(t *testing.T) {
	if HintL2.String() != "L2" || HintL3.String() != "L3" || HintNone.String() != "none" {
		t.Error("hint names wrong")
	}
	for _, s := range []StrideKind{StrideUnknown, StrideUnit, StrideConst,
		StrideSymbolic, StrideIndirect, StridePointerChase, StrideInvariant} {
		if s.String() == "" {
			t.Errorf("stride %d has empty name", s)
		}
	}
}

func TestInstrUsesAndDefs(t *testing.T) {
	base, dst, val := VGR(0), VGR(1), VGR(2)
	ld := Ld(dst, base, 4, 8)
	defs := ld.AllDefs()
	if len(defs) != 2 || defs[0] != dst || defs[1] != base {
		t.Errorf("load defs = %v, want [dst base]", defs)
	}
	uses := ld.AllUses()
	if len(uses) != 1 || uses[0] != base {
		t.Errorf("load uses = %v, want [base]", uses)
	}
	if ld.BaseReg() != base {
		t.Errorf("BaseReg = %v", ld.BaseReg())
	}

	st := St(base, val, 4, 0)
	if d := st.AllDefs(); len(d) != 0 {
		t.Errorf("store without post-inc defines %v", d)
	}
	if st.BaseReg() != base {
		t.Errorf("store base = %v", st.BaseReg())
	}

	p := VPR(0)
	add := Predicated(p, Add(dst, base, val))
	uses = add.AllUses()
	if len(uses) != 3 || uses[2] != p {
		t.Errorf("predicated add uses = %v, want predicate included", uses)
	}

	if r := Add(dst, base, val).BaseReg(); !r.IsNone() {
		t.Errorf("non-memory BaseReg = %v, want None", r)
	}
}

func TestInstrClone(t *testing.T) {
	ld := Ld(VGR(0), VGR(1), 4, 4)
	ld.Mem.Hint = HintL3
	c := ld.Clone()
	c.Dsts[0] = VGR(9)
	c.Mem.Hint = HintL2
	if ld.Dsts[0] != VGR(0) {
		t.Error("clone aliases Dsts")
	}
	if ld.Mem.Hint != HintL3 {
		t.Error("clone aliases Mem")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   *Instr
		want string
	}{
		{Ld(VGR(0), VGR(1), 4, 4), "ld4 vr0 = [vr1],4"},
		{St(VGR(1), VGR(0), 8, 0), "st8 [vr1] = vr0"},
		{Add(VGR(2), VGR(0), VGR(1)), "add vr2 = vr0, vr1"},
		{MovI(VGR(0), 42), "movi vr0 =, 42"},
		{Lfetch(VGR(0), 8, HintNone), "lfetch [vr0],8"},
		{Predicated(PR(16), Add(GR(33), GR(32), GR(4))), "(p16) add r33 = r32, r4"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestLoopBuilder(t *testing.T) {
	l := NewLoop("t")
	a, b := l.NewGR(), l.NewGR()
	f := l.NewFR()
	p := l.NewPR()
	if a == b {
		t.Error("NewGR returned duplicate registers")
	}
	if a.Class != ClassGR || f.Class != ClassFR || p.Class != ClassPR {
		t.Error("register classes wrong")
	}
	if !a.Virtual {
		t.Error("builder registers must be virtual")
	}
	in := l.Append(Add(b, a, a))
	if in.ID != 0 || len(l.Body) != 1 {
		t.Error("Append did not record instruction")
	}
	l.Init(a, 7)
	if v, ok := l.InitValue(a); !ok || v != 7 {
		t.Error("InitValue lost the setup")
	}
	if _, ok := l.InitValue(b); ok {
		t.Error("InitValue invented a setup")
	}
	e, ok := l.InitEntry(a)
	if !ok || e.Val != 7 {
		t.Error("InitEntry wrong")
	}
}

func TestLoopLoadsAndMemRefs(t *testing.T) {
	l := NewLoop("t")
	d, b := l.NewGR(), l.NewGR()
	l.Init(b, 0)
	l.Append(Ld(d, b, 4, 4))
	l.Append(Add(l.NewGR(), d, d))
	l.Append(Lfetch(b, 0, HintNone))
	if n := len(l.Loads()); n != 1 {
		t.Errorf("Loads() = %d, want 1", n)
	}
	if n := len(l.MemRefs()); n != 2 {
		t.Errorf("MemRefs() = %d, want 2", n)
	}
}

func TestLoopClone(t *testing.T) {
	l := NewLoop("t")
	d, b := l.NewGR(), l.NewGR()
	l.Init(b, 100)
	l.Append(Ld(d, b, 4, 4))
	l.MemDeps = append(l.MemDeps, MemDep{From: 0, To: 0, Distance: 1})
	c := l.Clone()
	c.Body[0].Mem.Hint = HintL3
	c.Setup[0].Val = 1
	if l.Body[0].Mem.Hint != HintNone || l.Setup[0].Val != 100 {
		t.Error("Clone aliases the original")
	}
	// The clone's register counters continue from the original's.
	r := c.NewGR()
	if r == d || r == b {
		t.Error("clone register counter collides")
	}
}

func TestLoopString(t *testing.T) {
	l := NewLoop("demo")
	d, b := l.NewGR(), l.NewGR()
	l.Init(b, 0)
	l.Append(Ld(d, b, 4, 4))
	s := l.String()
	if !strings.Contains(s, "demo:") || !strings.Contains(s, "ld4") {
		t.Errorf("String() = %q", s)
	}
}
