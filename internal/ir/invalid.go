package ir

import (
	"fmt"
	"math"
)

// InvalidLoopError marks a decoded wire loop that is syntactically valid
// JSON but semantically unusable: it violates an IR invariant the
// compiler relies on (single definitions, finite constants, registers
// inside the machine's files, well-formed memory dependences). The
// service maps it to the structured invalid_loop error code so
// adversarial or buggy clients get a 400 instead of a panic deep inside
// scheduling or interpretation.
type InvalidLoopError struct {
	Err error
}

func (e *InvalidLoopError) Error() string { return "ir: invalid loop: " + e.Err.Error() }

// Unwrap exposes the underlying validation failure.
func (e *InvalidLoopError) Unwrap() error { return e.Err }

// Limits on decoded loops. They are far above anything a real workload
// produces and exist only to bound the damage adversarial wire input can
// do before compilation starts.
const (
	// maxWireBody bounds the number of body instructions.
	maxWireBody = 4096
	// maxVirtReg bounds virtual register ids (dense counters are rebuilt
	// from the maximum, so a single absurd id would allocate nothing but
	// would poison every later NewGR call).
	maxVirtReg = 1 << 20
)

// physRegLimit is the size of the physical file for a class, mirroring
// the interpreter's register arrays (128 GR, 128 FR, 64 PR).
func physRegLimit(c RegClass) int {
	if c == ClassPR {
		return 64
	}
	return 128
}

// ValidateSemantics applies the semantic checks that turn adversarial
// wire input into a structured error instead of a panic deep in the
// compiler: the loop's own structural Verify (operand shapes, while-loop
// rules, in-range non-negative memory dependences), single definitions
// for virtual registers, finite floating-point constants, and register
// ids inside the physical files / a sane virtual range. DecodeLoop runs
// it on every decoded loop and wraps failures in *InvalidLoopError.
func ValidateSemantics(l *Loop) error {
	if len(l.Body) > maxWireBody {
		return fmt.Errorf("body has %d instructions (limit %d)", len(l.Body), maxWireBody)
	}
	if err := l.Verify(); err != nil {
		return err
	}

	checkReg := func(where string, r Reg) error {
		if r.IsNone() {
			return nil
		}
		if r.N < 0 {
			return fmt.Errorf("%s: negative register id %d", where, r.N)
		}
		if r.Virtual {
			if r.N > maxVirtReg {
				return fmt.Errorf("%s: virtual register id %d exceeds limit %d", where, r.N, maxVirtReg)
			}
			return nil
		}
		if lim := physRegLimit(r.Class); r.N >= lim {
			return fmt.Errorf("%s: physical %s outside the %d-entry %s file", where, r, lim, r.Class)
		}
		return nil
	}

	defs := map[Reg]int{}
	for i, in := range l.Body {
		where := fmt.Sprintf("body[%d]", i)
		if math.IsNaN(in.FImm) || math.IsInf(in.FImm, 0) {
			return fmt.Errorf("%s: non-finite immediate %v", where, in.FImm)
		}
		if err := checkReg(where, in.Pred); err != nil {
			return err
		}
		for _, r := range in.Dsts {
			if err := checkReg(where, r); err != nil {
				return err
			}
		}
		for _, r := range in.Srcs {
			if err := checkReg(where, r); err != nil {
				return err
			}
		}
		for _, d := range in.AllDefs() {
			if d.IsNone() || !d.Virtual {
				continue
			}
			if prev, dup := defs[d]; dup {
				return fmt.Errorf("%s defined by both body[%d] and body[%d] (virtual registers must have a single definition)", d, prev, i)
			}
			defs[d] = i
		}
	}
	for i, s := range l.Setup {
		if math.IsNaN(s.FVal) || math.IsInf(s.FVal, 0) {
			return fmt.Errorf("setup[%d]: non-finite value %v", i, s.FVal)
		}
		if err := checkReg(fmt.Sprintf("setup[%d]", i), s.Reg); err != nil {
			return err
		}
	}
	for i, r := range l.LiveOut {
		if err := checkReg(fmt.Sprintf("liveOut[%d]", i), r); err != nil {
			return err
		}
	}
	return nil
}
