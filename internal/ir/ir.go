// Package ir defines the loop intermediate representation used by the
// latency-tolerant software pipeliner and its substrates.
//
// The IR is deliberately Itanium-flavoured: instructions are predicated,
// loads and stores support post-increment addressing, and pipelined loops
// are controlled by br.cloop / br.ctop counted-loop branches. Unlike most
// compiler IRs, every opcode carries executable semantics (implemented in
// package interp), which lets the test suite prove that a pipelined kernel
// computes exactly the same result as its source loop.
package ir

import "fmt"

// RegClass identifies the register file a Reg belongs to.
type RegClass uint8

const (
	// ClassNone is the zero RegClass; a Reg with ClassNone is "no register"
	// (for example, an always-true qualifying predicate).
	ClassNone RegClass = iota
	// ClassGR is the 64-bit general (integer) register file, r0-r127.
	ClassGR
	// ClassFR is the floating-point register file, f0-f127.
	ClassFR
	// ClassPR is the 1-bit predicate register file, p0-p63.
	ClassPR
)

// String returns the conventional one-letter register file prefix.
func (c RegClass) String() string {
	switch c {
	case ClassGR:
		return "r"
	case ClassFR:
		return "f"
	case ClassPR:
		return "p"
	default:
		return "?"
	}
}

// Reg names a register operand. Before register allocation operands are
// virtual (Virtual == true, N is an arbitrary dense id per class); after
// allocation they are physical registers in the Itanium numbering, where
// r32/f32/p16 start the rotating regions.
type Reg struct {
	Class   RegClass
	N       int
	Virtual bool
}

// None is the absent register (e.g. an unqualified predicate slot).
var None = Reg{}

// IsNone reports whether r is the absent register.
func (r Reg) IsNone() bool { return r.Class == ClassNone }

// GR returns the physical general register rN.
func GR(n int) Reg { return Reg{Class: ClassGR, N: n} }

// FR returns the physical floating-point register fN.
func FR(n int) Reg { return Reg{Class: ClassFR, N: n} }

// PR returns the physical predicate register pN.
func PR(n int) Reg { return Reg{Class: ClassPR, N: n} }

// VGR returns the virtual general register with id n.
func VGR(n int) Reg { return Reg{Class: ClassGR, N: n, Virtual: true} }

// VFR returns the virtual floating-point register with id n.
func VFR(n int) Reg { return Reg{Class: ClassFR, N: n, Virtual: true} }

// VPR returns the virtual predicate register with id n.
func VPR(n int) Reg { return Reg{Class: ClassPR, N: n, Virtual: true} }

// String renders the register in assembly syntax; virtual registers are
// prefixed with "v" (e.g. vr7) to distinguish them from physical ones.
func (r Reg) String() string {
	if r.IsNone() {
		return "-"
	}
	if r.Virtual {
		return fmt.Sprintf("v%s%d", r.Class, r.N)
	}
	return fmt.Sprintf("%s%d", r.Class, r.N)
}

// Op enumerates the instruction opcodes. The set is the subset of the
// Itanium ISA that the paper's loops need: integer and FP arithmetic,
// predicated compares, memory operations with post-increment, software
// prefetch (lfetch), and the counted-loop branches.
type Op uint8

const (
	// OpNop issues but has no effect. Used for padding in tests.
	OpNop Op = iota

	// OpMovI: dst = Imm (integer immediate move).
	OpMovI
	// OpMov: dst = src0 (integer register move).
	OpMov
	// OpAdd: dst = src0 + src1.
	OpAdd
	// OpSub: dst = src0 - src1.
	OpSub
	// OpAddI: dst = src0 + Imm.
	OpAddI
	// OpAnd: dst = src0 & src1.
	OpAnd
	// OpOr: dst = src0 | src1.
	OpOr
	// OpXor: dst = src0 ^ src1.
	OpXor
	// OpShlI: dst = src0 << Imm.
	OpShlI
	// OpShrI: dst = src0 >> Imm (arithmetic).
	OpShrI
	// OpShladd: dst = (src0 << Imm) + src1 (Itanium shladd; Imm in 1..4).
	OpShladd
	// OpMul: dst = src0 * src1. Integer multiply executes on the FP unit
	// on Itanium (xma) and has FP-unit latency.
	OpMul

	// OpCmpEq: dstP0 = (src0 == src1), dstP1 = !(src0 == src1).
	// Either destination predicate may be None.
	OpCmpEq
	// OpCmpLt: dstP0 = (src0 < src1), dstP1 = complement (signed).
	OpCmpLt
	// OpCmpEqI: dstP0 = (src0 == Imm), dstP1 = complement.
	OpCmpEqI
	// OpCmpLtI: dstP0 = (src0 < Imm), dstP1 = complement.
	OpCmpLtI

	// OpFMovI: dst = FImm (FP immediate move; setf-style).
	OpFMovI
	// OpFMov: dst = src0 (FP register move).
	OpFMov
	// OpFAdd: dst = src0 + src1 (FP).
	OpFAdd
	// OpFSub: dst = src0 - src1 (FP).
	OpFSub
	// OpFMul: dst = src0 * src1 (FP).
	OpFMul
	// OpFMA: dst = src0*src1 + src2 (fused multiply-add).
	OpFMA
	// OpFCmpLt: dstP0 = (src0 < src1), dstP1 = complement (FP).
	OpFCmpLt
	// OpGetF: dst(GR) = raw move from FR source (getf.sig-style; here it
	// truncates the float to int64).
	OpGetF
	// OpSetF: dst(FR) = float64(src0) (setf/fcvt-style int-to-FP).
	OpSetF
	// OpSel: dst = src0(PR) ? src1 : src2 — the single-definition merge
	// the if-converter emits for values produced on both arms of a
	// diamond (a predicated-move pair in real Itanium code). Keeping the
	// merge a single definition is what lets rotating register renaming
	// work on if-converted bodies.
	OpSel
	// OpFSel is OpSel for floating-point values.
	OpFSel
	// OpChk validates an earlier data-speculative (advanced) load; it has
	// no architectural effect in this model (recovery is not simulated)
	// but occupies an issue slot like chk.a does.
	OpChk

	// OpLd: integer load, dst = *(base) with Mem describing size and
	// post-increment of the base register.
	OpLd
	// OpLdF: floating-point load (8-byte), dst(FR) = *(base). FP loads
	// bypass the L1D cache on Itanium 2.
	OpLdF
	// OpSt: integer store *(base) = src0, with post-increment.
	OpSt
	// OpStF: FP store *(base) = src0(FR), with post-increment.
	OpStF
	// OpLfetch: software prefetch of the line at *(base); no destination.
	// Mem.Hint selects the target cache level.
	OpLfetch

	// OpBrCloop terminates a source (non-pipelined) counted loop:
	// if LC != 0 { LC--; branch back }.
	OpBrCloop
	// OpBrCtop terminates a pipelined kernel loop: rotates the register
	// files, injects the new stage predicate into p16, and branches while
	// LC != 0 or EC > 1 (see interp for exact semantics).
	OpBrCtop

	opMax // sentinel for table sizing
)

var opNames = [...]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpAddI: "addi", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShlI: "shl",
	OpShrI: "shr", OpShladd: "shladd", OpMul: "xma",
	OpCmpEq: "cmp.eq", OpCmpLt: "cmp.lt", OpCmpEqI: "cmp.eq.i", OpCmpLtI: "cmp.lt.i",
	OpFMovI: "fmovi", OpFMov: "fmov", OpFAdd: "fadd", OpFSub: "fsub",
	OpFMul: "fmul", OpFMA: "fma", OpFCmpLt: "fcmp.lt",
	OpGetF: "getf", OpSetF: "setf",
	OpSel: "sel", OpFSel: "fsel", OpChk: "chk.a",
	OpLd: "ld", OpLdF: "ldf", OpSt: "st", OpStF: "stf", OpLfetch: "lfetch",
	OpBrCloop: "br.cloop", OpBrCtop: "br.ctop",
}

// String returns the assembly mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsLoad reports whether the opcode reads memory into a register.
func (o Op) IsLoad() bool { return o == OpLd || o == OpLdF }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o == OpSt || o == OpStF }

// IsMem reports whether the opcode accesses memory (including lfetch).
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() || o == OpLfetch }

// IsBranch reports whether the opcode is a loop-closing branch.
func (o Op) IsBranch() bool { return o == OpBrCloop || o == OpBrCtop }

// IsFP reports whether the opcode executes on the floating-point unit.
// Integer multiply is FP-unit work on Itanium.
func (o Op) IsFP() bool {
	switch o {
	case OpFMovI, OpFMov, OpFAdd, OpFSub, OpFMul, OpFMA, OpFCmpLt, OpMul, OpSetF, OpGetF, OpFSel:
		return true
	}
	return false
}

// Hint is the latency-hint token the High-Level Optimizer attaches to a
// memory reference (paper Sec. 3.2). The back-end machine model translates
// it into a typical (not best-case) latency for that cache level.
type Hint uint8

const (
	// HintNone: schedule the load at its base (best-case) latency.
	HintNone Hint = iota
	// HintL2: the load is expected to hit no higher than L2.
	HintL2
	// HintL3: the load is expected to hit no higher than L3 (or memory).
	HintL3
)

// String names the hint for diagnostics.
func (h Hint) String() string {
	switch h {
	case HintL2:
		return "L2"
	case HintL3:
		return "L3"
	default:
		return "none"
	}
}

// StrideKind classifies the access pattern of a memory reference as seen by
// the High-Level Optimizer's symbolic analysis.
type StrideKind uint8

const (
	// StrideUnknown: no static information about the address stream.
	StrideUnknown StrideKind = iota
	// StrideUnit: consecutive elements, stride equal to element size.
	StrideUnit
	// StrideConst: constant stride known at compile time.
	StrideConst
	// StrideSymbolic: constant per execution but unknown at compile time
	// (paper heuristic 2a: prefetch distance is limited to bound TLB
	// pressure, so the reference is marked for longer-latency scheduling).
	StrideSymbolic
	// StrideIndirect: a[b[i]]-style access (paper heuristic 2b).
	StrideIndirect
	// StridePointerChase: address depends on a loaded pointer from a
	// previous iteration (paper heuristic 1: not prefetchable at all).
	StridePointerChase
	// StrideInvariant: the address does not vary across iterations.
	StrideInvariant
)

// String names the stride class.
func (s StrideKind) String() string {
	switch s {
	case StrideUnit:
		return "unit"
	case StrideConst:
		return "const"
	case StrideSymbolic:
		return "symbolic"
	case StrideIndirect:
		return "indirect"
	case StridePointerChase:
		return "ptr-chase"
	case StrideInvariant:
		return "invariant"
	default:
		return "unknown"
	}
}

// MemRef carries the memory-access metadata of a load, store or lfetch:
// operand size, addressing, and the analysis facts the HLO prefetcher and
// the pipeliner consume.
type MemRef struct {
	// Size is the access width in bytes (1, 2, 4 or 8).
	Size int
	// PostInc is added to the base register after the access (Itanium
	// post-increment addressing); zero means no update.
	PostInc int64

	// Stride is the HLO's classification of the address stream.
	Stride StrideKind
	// StrideBytes is the per-iteration address delta when Stride is
	// StrideUnit or StrideConst (equal to PostInc when post-incremented).
	StrideBytes int64

	// Hint is the latency-hint token set by the HLO prefetcher.
	Hint Hint
	// Delinquent marks loads the HLO expects to have consistently long
	// latencies because they cannot be prefetched at all (heuristic 1).
	// The pipeliner boosts such loads even in loops below the trip-count
	// threshold — long expected latency can make the optimization
	// profitable at low trip counts (paper Sec. 3.1 and the Sec. 4.4
	// example).
	Delinquent bool
	// Prefetched records that the HLO emitted an lfetch covering this
	// reference.
	Prefetched bool
	// PrefetchDistance is the distance (in source iterations) of that
	// lfetch, when Prefetched.
	PrefetchDistance int
	// Group identifies the cache-line equivalence class of the reference
	// within its loop; references in one group share prefetches, and only
	// the leading reference is prefetched (paper Sec. 3.2). Zero means
	// "its own group".
	Group int
	// LineLeader marks the leading reference of its Group.
	LineLeader bool

	// Indirect-reference metadata (StrideIndirect, the a[b[i]] pattern of
	// paper heuristic 2b). The prefetcher uses it to emit the speculative
	// index load + address computation + lfetch sequence for the indirect
	// stream.
	//
	// IndexInit is the initial address of the index stream b, IndexStride
	// its per-iteration advance, IndexSize the index element size in
	// bytes, ScaleShift log2 of a's element size, and ArrayBase the
	// loop-invariant register holding &a[0].
	IndexInit   int64
	IndexStride int64
	IndexSize   int
	ScaleShift  int64
	ArrayBase   Reg
}

// Clone returns a deep copy of the MemRef.
func (m *MemRef) Clone() *MemRef {
	if m == nil {
		return nil
	}
	c := *m
	return &c
}

// Instr is one IR instruction. Dsts/Srcs hold register operands; compares
// may define up to two predicate destinations. Pred is the qualifying
// predicate (None = always execute). Instructions are identified within a
// loop body by their index (ID), assigned by the Loop builder.
type Instr struct {
	// ID is the instruction's dense index within its loop body.
	ID int
	// Op is the opcode.
	Op Op
	// Pred is the qualifying predicate register, or None.
	Pred Reg
	// Dsts are the destination registers (0, 1 or 2 for compares).
	Dsts []Reg
	// Srcs are the source registers.
	Srcs []Reg
	// Imm is the integer immediate for immediate-form opcodes.
	Imm int64
	// FImm is the FP immediate for OpFMovI.
	FImm float64
	// Mem is the memory-reference descriptor for memory opcodes.
	Mem *MemRef
	// Comment is carried through to the printer for annotated listings.
	Comment string
}

// Clone returns a deep copy of the instruction (operand slices and MemRef
// are copied, so mutations of the clone do not alias the original).
func (in *Instr) Clone() *Instr {
	c := *in
	c.Dsts = append([]Reg(nil), in.Dsts...)
	c.Srcs = append([]Reg(nil), in.Srcs...)
	c.Mem = in.Mem.Clone()
	return &c
}

// AllUses returns every register the instruction reads: sources, the
// qualifying predicate, and the base register of a memory access (which is
// also written back when post-incremented).
func (in *Instr) AllUses() []Reg {
	uses := make([]Reg, 0, len(in.Srcs)+1)
	uses = append(uses, in.Srcs...)
	if !in.Pred.IsNone() {
		uses = append(uses, in.Pred)
	}
	return uses
}

// AllDefs returns every register the instruction writes, including the
// post-incremented base register of a memory access.
func (in *Instr) AllDefs() []Reg {
	defs := append([]Reg(nil), in.Dsts...)
	if in.Mem != nil && in.Mem.PostInc != 0 && len(in.Srcs) > 0 {
		defs = append(defs, in.baseReg())
	}
	return defs
}

// baseReg returns the address base register of a memory instruction.
// By convention the base is the last source of loads/lfetch and the second
// source of stores (src0 is the stored value).
func (in *Instr) baseReg() Reg {
	if !in.Op.IsMem() || len(in.Srcs) == 0 {
		return None
	}
	return in.Srcs[len(in.Srcs)-1]
}

// BaseReg returns the address base register of a memory instruction, or
// None for non-memory instructions.
func (in *Instr) BaseReg() Reg { return in.baseReg() }

// String renders the instruction in a compact assembly-like syntax.
func (in *Instr) String() string {
	s := ""
	if !in.Pred.IsNone() {
		s += "(" + in.Pred.String() + ") "
	}
	s += in.Op.String()
	switch {
	case in.Op.IsLoad():
		s += fmt.Sprintf("%d %s = [%s]", in.Mem.Size, in.Dsts[0], in.baseReg())
		if in.Mem.PostInc != 0 {
			s += fmt.Sprintf(",%d", in.Mem.PostInc)
		}
	case in.Op.IsStore():
		s += fmt.Sprintf("%d [%s] = %s", in.Mem.Size, in.baseReg(), in.Srcs[0])
		if in.Mem.PostInc != 0 {
			s += fmt.Sprintf(",%d", in.Mem.PostInc)
		}
	case in.Op == OpLfetch:
		s += fmt.Sprintf(" [%s]", in.baseReg())
		if in.Mem.PostInc != 0 {
			s += fmt.Sprintf(",%d", in.Mem.PostInc)
		}
	case in.Op.IsBranch():
		// no operands
	default:
		first := true
		for _, d := range in.Dsts {
			if !first {
				s += ","
			} else {
				s += " "
			}
			s += d.String()
			first = false
		}
		if len(in.Dsts) > 0 {
			s += " ="
		}
		for i, src := range in.Srcs {
			if i > 0 {
				s += ","
			}
			s += " " + src.String()
		}
		switch in.Op {
		case OpMovI, OpAddI, OpShlI, OpShrI, OpShladd, OpCmpEqI, OpCmpLtI:
			s += fmt.Sprintf(", %d", in.Imm)
		case OpFMovI:
			s += fmt.Sprintf(", %g", in.FImm)
		}
	}
	if in.Comment != "" {
		s += "  // " + in.Comment
	}
	return s
}
