package ir

import (
	"fmt"
	"strings"
)

// RegInit gives a register its value on loop entry. Workload builders use
// it to wire loop-invariant operands and initial address bases; the HLO
// prefetcher appends inits for the lfetch address registers it creates.
type RegInit struct {
	Reg  Reg
	Val  int64   // value for GR and PR (non-zero = true) registers
	FVal float64 // value for FR registers
}

// MemDep is an explicit cross-instruction memory dependence the front end
// has proven (or must conservatively assume). Distance is the dependence
// distance in iterations (0 = same iteration).
type MemDep struct {
	From, To int // instruction IDs within the loop body
	Distance int
	// Latency is the minimum scheduling distance in cycles (usually 0 for
	// store->load ordering on Itanium where the memory system forwards,
	// 1 to force separate cycles).
	Latency int
	// MayAlias marks a dependence assumed only because the compiler could
	// not disambiguate the references. Data speculation (ld.a/chk.a,
	// core.DataSpeculate) may break such dependences to shorten
	// recurrence cycles (paper Sec. 3.3).
	MayAlias bool
}

// WhileInfo marks a data-terminated (while) loop. Cond is the loop's
// validity predicate: a virtual predicate register defined by a compare in
// the body and initialized to 1 (iteration 0 is assumed valid — the front
// end guards zero-trip executions). Every body instruction must be
// qualified by a use of Cond; instances for iterations past the exit are
// then predicated off by the propagating zero, and the pipelined kernel's
// br.wtop branches on the validity of the oldest in-flight iteration.
type WhileInfo struct {
	Cond Reg
}

// Loop is a single innermost loop in if-converted straight-line form —
// counted by default, data-terminated when While is set. The loop-closing
// branch (br.cloop/br.ctop for counted loops, the While condition/br.wtop
// for while loops) is implicit and not part of Body.
type Loop struct {
	// Name identifies the loop in diagnostics and experiment tables.
	Name string
	// Body is the straight-line loop body. Instruction IDs equal body
	// indices.
	Body []*Instr
	// Setup seeds register values on loop entry.
	Setup []RegInit
	// LiveOut lists registers whose final values are observable after the
	// loop; the pipeliner must preserve them and tests compare them.
	LiveOut []Reg
	// MemDeps are the proven cross-iteration or intra-iteration memory
	// ordering constraints. Memory references not related by an entry are
	// independent (the workload generators construct non-overlapping data).
	MemDeps []MemDep
	// While marks a data-terminated loop; nil means counted.
	While *WhileInfo

	nextVirt [4]int // next virtual id per class, for the builder
}

// Clone deep-copies the loop (body instructions, setup, deps).
func (l *Loop) Clone() *Loop {
	c := &Loop{
		Name:     l.Name,
		Body:     make([]*Instr, len(l.Body)),
		Setup:    append([]RegInit(nil), l.Setup...),
		LiveOut:  append([]Reg(nil), l.LiveOut...),
		MemDeps:  append([]MemDep(nil), l.MemDeps...),
		nextVirt: l.nextVirt,
	}
	if l.While != nil {
		w := *l.While
		c.While = &w
	}
	for i, in := range l.Body {
		c.Body[i] = in.Clone()
	}
	return c
}

// NewLoop returns an empty loop with the given name.
func NewLoop(name string) *Loop {
	return &Loop{Name: name}
}

// NewGR allocates a fresh virtual general register.
func (l *Loop) NewGR() Reg {
	l.nextVirt[ClassGR]++
	return VGR(l.nextVirt[ClassGR] - 1)
}

// NewFR allocates a fresh virtual floating-point register.
func (l *Loop) NewFR() Reg {
	l.nextVirt[ClassFR]++
	return VFR(l.nextVirt[ClassFR] - 1)
}

// NewPR allocates a fresh virtual predicate register.
func (l *Loop) NewPR() Reg {
	l.nextVirt[ClassPR]++
	return VPR(l.nextVirt[ClassPR] - 1)
}

// Append adds an instruction to the body, assigning its ID, and returns it.
func (l *Loop) Append(in *Instr) *Instr {
	in.ID = len(l.Body)
	l.Body = append(l.Body, in)
	return in
}

// Init records an integer/predicate register initialization.
func (l *Loop) Init(r Reg, v int64) {
	l.Setup = append(l.Setup, RegInit{Reg: r, Val: v})
}

// InitF records a floating-point register initialization.
func (l *Loop) InitF(r Reg, v float64) {
	l.Setup = append(l.Setup, RegInit{Reg: r, FVal: v})
}

// InitValue returns the recorded initial integer value of r, if any.
func (l *Loop) InitValue(r Reg) (int64, bool) {
	for _, s := range l.Setup {
		if s.Reg == r {
			return s.Val, true
		}
	}
	return 0, false
}

// InitEntry returns the full setup entry for r, if any.
func (l *Loop) InitEntry(r Reg) (RegInit, bool) {
	for _, s := range l.Setup {
		if s.Reg == r {
			return s, true
		}
	}
	return RegInit{}, false
}

// Loads returns the body's load instructions in program order.
func (l *Loop) Loads() []*Instr {
	var out []*Instr
	for _, in := range l.Body {
		if in.Op.IsLoad() {
			out = append(out, in)
		}
	}
	return out
}

// MemRefs returns every memory-accessing instruction (loads, stores,
// lfetches) in program order.
func (l *Loop) MemRefs() []*Instr {
	var out []*Instr
	for _, in := range l.Body {
		if in.Op.IsMem() {
			out = append(out, in)
		}
	}
	return out
}

// String renders the loop as an annotated assembly listing.
func (l *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", l.Name)
	for _, in := range l.Body {
		fmt.Fprintf(&b, "  %s\n", in)
	}
	return b.String()
}

// --- convenience constructors used throughout workloads and tests ---

// Ld builds an integer load dst = [base] with the given access size and
// post-increment.
func Ld(dst, base Reg, size int, postInc int64) *Instr {
	return &Instr{Op: OpLd, Dsts: []Reg{dst}, Srcs: []Reg{base},
		Mem: &MemRef{Size: size, PostInc: postInc}}
}

// LdF builds an 8-byte floating-point load dst = [base].
func LdF(dst, base Reg, postInc int64) *Instr {
	return &Instr{Op: OpLdF, Dsts: []Reg{dst}, Srcs: []Reg{base},
		Mem: &MemRef{Size: 8, PostInc: postInc}}
}

// St builds an integer store [base] = val.
func St(base, val Reg, size int, postInc int64) *Instr {
	return &Instr{Op: OpSt, Srcs: []Reg{val, base},
		Mem: &MemRef{Size: size, PostInc: postInc}}
}

// StF builds an FP store [base] = val.
func StF(base, val Reg, postInc int64) *Instr {
	return &Instr{Op: OpStF, Srcs: []Reg{val, base},
		Mem: &MemRef{Size: 8, PostInc: postInc}}
}

// Lfetch builds a software prefetch of [base].
func Lfetch(base Reg, postInc int64, hint Hint) *Instr {
	return &Instr{Op: OpLfetch, Srcs: []Reg{base},
		Mem: &MemRef{Size: 1, PostInc: postInc, Hint: hint}}
}

// Add builds dst = a + b.
func Add(dst, a, b Reg) *Instr {
	return &Instr{Op: OpAdd, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// Sub builds dst = a - b.
func Sub(dst, a, b Reg) *Instr {
	return &Instr{Op: OpSub, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// AddI builds dst = a + imm.
func AddI(dst, a Reg, imm int64) *Instr {
	return &Instr{Op: OpAddI, Dsts: []Reg{dst}, Srcs: []Reg{a}, Imm: imm}
}

// MovI builds dst = imm.
func MovI(dst Reg, imm int64) *Instr {
	return &Instr{Op: OpMovI, Dsts: []Reg{dst}, Imm: imm}
}

// Mov builds dst = src.
func Mov(dst, src Reg) *Instr {
	return &Instr{Op: OpMov, Dsts: []Reg{dst}, Srcs: []Reg{src}}
}

// Shladd builds dst = (a << count) + b.
func Shladd(dst, a Reg, count int64, b Reg) *Instr {
	return &Instr{Op: OpShladd, Dsts: []Reg{dst}, Srcs: []Reg{a, b}, Imm: count}
}

// Mul builds dst = a * b (integer; FP-unit latency).
func Mul(dst, a, b Reg) *Instr {
	return &Instr{Op: OpMul, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// FMov builds dst = src (FP register move).
func FMov(dst, src Reg) *Instr {
	return &Instr{Op: OpFMov, Dsts: []Reg{dst}, Srcs: []Reg{src}}
}

// FMovI builds dst = imm (FP immediate move).
func FMovI(dst Reg, imm float64) *Instr {
	return &Instr{Op: OpFMovI, Dsts: []Reg{dst}, FImm: imm}
}

// FAdd builds dst = a + b (FP).
func FAdd(dst, a, b Reg) *Instr {
	return &Instr{Op: OpFAdd, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// FSub builds dst = a - b (FP).
func FSub(dst, a, b Reg) *Instr {
	return &Instr{Op: OpFSub, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// FMul builds dst = a * b (FP).
func FMul(dst, a, b Reg) *Instr {
	return &Instr{Op: OpFMul, Dsts: []Reg{dst}, Srcs: []Reg{a, b}}
}

// FMA builds dst = a*b + c.
func FMA(dst, a, b, c Reg) *Instr {
	return &Instr{Op: OpFMA, Dsts: []Reg{dst}, Srcs: []Reg{a, b, c}}
}

// CmpEqI builds pTrue, pFalse = (a == imm); either predicate may be None.
func CmpEqI(pTrue, pFalse, a Reg, imm int64) *Instr {
	return &Instr{Op: OpCmpEqI, Dsts: []Reg{pTrue, pFalse}, Srcs: []Reg{a}, Imm: imm}
}

// CmpLtI builds pTrue, pFalse = (a < imm); either predicate may be None.
func CmpLtI(pTrue, pFalse, a Reg, imm int64) *Instr {
	return &Instr{Op: OpCmpLtI, Dsts: []Reg{pTrue, pFalse}, Srcs: []Reg{a}, Imm: imm}
}

// CmpEq builds pTrue, pFalse = (a == b).
func CmpEq(pTrue, pFalse, a, b Reg) *Instr {
	return &Instr{Op: OpCmpEq, Dsts: []Reg{pTrue, pFalse}, Srcs: []Reg{a, b}}
}

// CmpLt builds pTrue, pFalse = (a < b).
func CmpLt(pTrue, pFalse, a, b Reg) *Instr {
	return &Instr{Op: OpCmpLt, Dsts: []Reg{pTrue, pFalse}, Srcs: []Reg{a, b}}
}

// Sel builds dst = sel ? a : b (integer predicated-move merge).
func Sel(dst, sel, a, b Reg) *Instr {
	return &Instr{Op: OpSel, Dsts: []Reg{dst}, Srcs: []Reg{sel, a, b}}
}

// FSel builds dst = sel ? a : b (FP).
func FSel(dst, sel, a, b Reg) *Instr {
	return &Instr{Op: OpFSel, Dsts: []Reg{dst}, Srcs: []Reg{sel, a, b}}
}

// Chk builds a data-speculation check of the advanced load's target.
func Chk(target Reg) *Instr {
	return &Instr{Op: OpChk, Srcs: []Reg{target}}
}

// Predicated returns the instruction with its qualifying predicate set.
func Predicated(p Reg, in *Instr) *Instr {
	in.Pred = p
	return in
}
