package ir_test

import (
	"bytes"
	"testing"

	"ltsp"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/workload"
)

// archetypeLoops returns one generator per workload archetype, covering
// every IR feature the wire format must carry: counted and while loops,
// predication, FP, indirect-gather metadata, symbolic strides, and the
// if-converted diamond.
func archetypeLoops() map[string]func() *ir.Loop {
	m := map[string]func() *ir.Loop{}
	add := func(name string) func(gen func() *ir.Loop, initMem func(*interp.Memory)) {
		return func(gen func() *ir.Loop, _ func(*interp.Memory)) { m[name] = gen }
	}
	add("IntCopyAdd")(workload.IntCopyAdd(1024))
	add("FPDaxpy")(workload.FPDaxpy(1024))
	add("FPReduction")(workload.FPReduction(1024))
	add("PointerChase")(workload.PointerChase(512, 7))
	add("WhileChase")(workload.WhileChase(512, 100, 7))
	add("IndirectGather")(workload.IndirectGather(256, 1024, false, 11))
	add("IndirectGatherFP")(workload.IndirectGather(256, 1024, true, 11))
	add("LowTripSAD")(workload.LowTripSAD(16))
	add("MultiStreamXor")(workload.MultiStreamXor(4, 1024))
	add("RegPressureFP")(workload.RegPressureFP(6, 1024))
	add("SymbolicStrideFP")(workload.SymbolicStrideFP(1024, 40))
	add("PointerChaseBranchy")(workload.PointerChaseBranchy(512, 7))
	return m
}

// TestLoopRoundTripArchetypes: encode → decode → re-encode must be
// byte-identical, hashes must agree, and the decoded loop must compile to
// the same II/stage structure as the original.
func TestLoopRoundTripArchetypes(t *testing.T) {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 100}
	for name, gen := range archetypeLoops() {
		t.Run(name, func(t *testing.T) {
			orig := gen()
			enc, err := ir.EncodeLoop(orig)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := ir.DecodeLoop(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			enc2, err := ir.EncodeLoop(dec)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("re-encode differs:\n  first:  %s\n  second: %s", enc, enc2)
			}
			h1, err := ir.LoopHash(orig)
			if err != nil {
				t.Fatalf("hash: %v", err)
			}
			h2, err := ir.LoopHash(dec)
			if err != nil {
				t.Fatalf("hash decoded: %v", err)
			}
			if h1 != h2 {
				t.Fatalf("content hash changed across round trip: %s vs %s", h1, h2)
			}

			// The decoded loop must be the same compilation input: HLO +
			// pipeliner must reach the identical II/stage structure. Compile
			// mutates its input, so each side gets its own copy.
			c1, err1 := ltsp.Compile(gen(), opts)
			c2, err2 := ltsp.Compile(dec, opts)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("compile divergence: original err=%v, decoded err=%v", err1, err2)
			}
			if err1 != nil {
				return
			}
			if c1.Pipelined != c2.Pipelined || c1.II != c2.II || c1.Stages != c2.Stages ||
				c1.ResII != c2.ResII || c1.RecII != c2.RecII {
				t.Fatalf("compiled structure differs: original (pipelined=%v II=%d stages=%d resII=%d recII=%d), decoded (pipelined=%v II=%d stages=%d resII=%d recII=%d)",
					c1.Pipelined, c1.II, c1.Stages, c1.ResII, c1.RecII,
					c2.Pipelined, c2.II, c2.Stages, c2.ResII, c2.RecII)
			}
			if c1.Program.Listing() != c2.Program.Listing() {
				t.Fatalf("kernel listing differs after round trip")
			}
		})
	}
}

// TestLoopRoundTripAllBenchmarkLoops byte-round-trips every loop of every
// benchmark model in both SPEC suites.
func TestLoopRoundTripAllBenchmarkLoops(t *testing.T) {
	for _, b := range workload.All() {
		for i := range b.Loops {
			spec := b.Loops[i]
			l := spec.Gen()
			enc, err := ir.EncodeLoop(l)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", b.Name, spec.Name, err)
			}
			dec, err := ir.DecodeLoop(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", b.Name, spec.Name, err)
			}
			enc2, err := ir.EncodeLoop(dec)
			if err != nil {
				t.Fatalf("%s/%s: re-encode: %v", b.Name, spec.Name, err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%s/%s: re-encode differs", b.Name, spec.Name)
			}
		}
	}
}

// TestLoopRoundTripMemDeps covers the MemDeps and While fields that the
// workload generators exercise only sparsely.
func TestLoopRoundTripMemDeps(t *testing.T) {
	l := ir.NewLoop("deps")
	v, b, c := l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Ld(v, b, 8, 8))
	l.Append(ir.St(c, v, 8, 8))
	l.MemDeps = []ir.MemDep{
		{From: 1, To: 0, Distance: 1, Latency: 1, MayAlias: true},
		{From: 0, To: 1},
	}
	enc, err := ir.EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ir.DecodeLoop(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.MemDeps) != 2 || dec.MemDeps[0] != l.MemDeps[0] || dec.MemDeps[1] != l.MemDeps[1] {
		t.Fatalf("MemDeps lost: %+v", dec.MemDeps)
	}
	enc2, err := ir.EncodeLoop(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode differs")
	}
}

// TestDecodeLoopRejects checks version and operand validation.
func TestDecodeLoopRejects(t *testing.T) {
	cases := map[string]string{
		"wrong version": `{"v":99,"body":[]}`,
		"unknown op":    `{"v":1,"body":[{"op":"frobnicate"}]}`,
		"bad register":  `{"v":1,"body":[{"op":"add","dsts":["q7"]}]}`,
		"unknown field": `{"v":1,"body":[],"extra":1}`,
	}
	for name, data := range cases {
		if _, err := ir.DecodeLoop([]byte(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// TestDecodeRestoresVirtualCounters: passes that allocate fresh virtual
// registers on a decoded loop must not collide with existing operands.
func TestDecodeRestoresVirtualCounters(t *testing.T) {
	gen, _ := workload.IntCopyAdd(64)
	orig := gen()
	enc, err := ir.EncodeLoop(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ir.DecodeLoop(enc)
	if err != nil {
		t.Fatal(err)
	}
	fresh := dec.NewGR()
	for _, in := range dec.Body {
		for _, r := range append(in.AllDefs(), in.AllUses()...) {
			if r == fresh {
				t.Fatalf("fresh register %v collides with body operand", fresh)
			}
		}
	}
}
