// Package buildinfo carries the version stamp shared by the ltsp binaries
// and the ltspd /metrics and /healthz endpoints.
package buildinfo

import "runtime"

// Version identifies the build. It defaults to "dev" and is overridden at
// link time:
//
//	go build -ldflags "-X ltsp/internal/buildinfo.Version=v1.2.3" ./cmd/ltspd
var Version = "dev"

// GoVersion reports the toolchain that produced the binary.
func GoVersion() string { return runtime.Version() }
