package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table renders the suite result as a fixed-width table, one row per
// benchmark and one column per configuration, with the geomean last —
// the textual equivalent of the paper's bar charts.
func (r *SuiteResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", r.Suite)
	for _, c := range r.Configs {
		fmt.Fprintf(&b, " %16s", c.Name)
	}
	b.WriteByte('\n')
	for bi, name := range r.Benchmarks {
		fmt.Fprintf(&b, "%-18s", name)
		for ci := range r.Configs {
			fmt.Fprintf(&b, " %15.1f%%", r.Gains[bi][ci])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "geomean")
	for ci := range r.Configs {
		fmt.Fprintf(&b, " %15.1f%%", r.Geomean[ci])
	}
	b.WriteByte('\n')
	return b.String()
}

// String renders the Fig. 7 headroom experiment.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — headroom experiment (all non-critical loads at typical L3 latency, PGO)\n\n")
	b.WriteString(r.CPU2006.Table())
	fmt.Fprintf(&b, "%-18s", "paper geomean")
	for _, g := range r.PaperGeomean2006 {
		fmt.Fprintf(&b, " %15.1f%%", g)
	}
	b.WriteString("\n\n")
	b.WriteString(r.CPU2000.Table())
	fmt.Fprintf(&b, "%-18s", "paper geomean")
	for _, g := range r.PaperGeomean2000 {
		fmt.Fprintf(&b, " %15.1f%%", g)
	}
	fmt.Fprintf(&b, "\n\nprefetching disabled, n=32, both suites: %+.1f%% (paper: +4.6%%)\n", r.PrefetchOffGain)
	return b.String()
}

// String renders the Fig. 8 experiment.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — general FP-L2 hints vs HLO-directed hints (PGO, n=32)\n\n")
	b.WriteString(r.CPU2006.Table())
	fmt.Fprintf(&b, "%-18s %15.1f%% %15.1f%%\n\n", "paper geomean",
		r.PaperGeomean2006[0], r.PaperGeomean2006[1])
	b.WriteString(r.CPU2000.Table())
	fmt.Fprintf(&b, "%-18s %15.1f%% %15.1f%%\n", "paper geomean",
		r.PaperGeomean2000[0], r.PaperGeomean2000[1])
	return b.String()
}

// String renders the Fig. 9 experiment.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — without PGO (static trip-count estimates), CPU2006\n\n")
	b.WriteString(r.CPU2006.Table())
	fmt.Fprintf(&b, "%-18s %15.1f%% %15.1f%%\n", "paper geomean",
		r.PaperGeomean[0], r.PaperGeomean[1])
	return b.String()
}

// FormatFig5 renders the analytic curves (one row per clustering factor,
// one column per coverage ratio) followed by the simulation validation.
func FormatFig5(analytic []Fig5Point, validation []Fig5Validation) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — stall reduction 100*(1-(1-c)/k)\n\n")
	cs := []float64{1, 0.5, 0.1, 0.01}
	b.WriteString("  k \\ c ")
	for _, c := range cs {
		fmt.Fprintf(&b, " %8.2f", c)
	}
	b.WriteByte('\n')
	byKC := map[[2]float64]float64{}
	ks := map[int]bool{}
	for _, p := range analytic {
		byKC[[2]float64{float64(p.K), p.C}] = p.Reduction
		ks[p.K] = true
	}
	var kList []int
	for k := range ks {
		kList = append(kList, k)
	}
	sort.Ints(kList)
	for _, k := range kList {
		fmt.Fprintf(&b, "  %5d ", k)
		for _, c := range cs {
			fmt.Fprintf(&b, " %7.1f%%", byKC[[2]float64{float64(k), c}])
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nsimulation validation (measured vs Equ. 2 with c = d/L_measured):\n")
	fmt.Fprintf(&b, "  %-8s %3s %4s %10s %10s %10s\n", "level", "k", "d", "L", "measured", "predicted")
	for _, v := range validation {
		fmt.Fprintf(&b, "  %-8s %3d %4d %10.1f %9.1f%% %9.1f%%\n",
			v.Level, v.K, v.D, v.MeasuredL, v.Measured, v.Predicted)
	}
	return b.String()
}

// String renders the Fig. 10 cycle accounting.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — CPU2006 cycle accounting, HLO hints vs baseline (no PGO)\n\n")
	fmt.Fprintf(&b, "  %-22s %12s %12s %9s %9s\n", "component", "baseline", "HLO hints", "change", "paper")
	row := func(name string, a, v, change, paper float64) {
		fmt.Fprintf(&b, "  %-22s %12.3f %12.3f %+8.1f%% %+8.1f%%\n", name, a, v, change, paper)
	}
	row("unstalled execution", r.Baseline.Unstalled, r.Variant.Unstalled, r.UnstalledChange, r.PaperUnstalledChange)
	row("BE_EXE_BUBBLE", r.Baseline.Exe, r.Variant.Exe, r.ExeChange, r.PaperExeChange)
	row("BE_L1D_FPU_BUBBLE", r.Baseline.L1DFPU, r.Variant.L1DFPU, r.L1DFPUChange, r.PaperL1DFPUChange)
	row("BE_RSE_BUBBLE", r.Baseline.RSE, r.Variant.RSE, r.RSEChange, r.PaperRSEChange)
	fmt.Fprintf(&b, "  %-22s %12.3f %12.3f %+8.1f%%\n", "total", r.Baseline.Total, r.Variant.Total, r.TotalChange)
	fmt.Fprintf(&b, "\n  OzQ-full share of cycles: %.1f%% -> %.1f%% (paper: 8.2%% -> 9.4%%)\n",
		r.OzQShareBase, r.OzQShareVar)
	return b.String()
}

// String renders the Sec. 4.4 case study.
func (r *CaseStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. 4.4 — 429.mcf refresh_potential case study\n\n")
	fmt.Fprintf(&b, "  average trip count: %.1f (paper: 2.3)\n", r.AvgTrip)
	fmt.Fprintf(&b, "  kernel II=%d, stages=%d", r.II, r.Stages)
	if r.Outcome != "" {
		fmt.Fprintf(&b, " (%s)", r.Outcome)
	}
	b.WriteString("\n")
	b.WriteString("  delinquent loads (HLO heuristic 1):\n")
	for _, n := range r.DelinquentLoads {
		if k, boosted := r.ClusterK[n]; boosted {
			fmt.Fprintf(&b, "    %-22s clustering k=%d\n", n, k)
		} else {
			fmt.Fprintf(&b, "    %-22s critical (on the pointer-chase recurrence), base latency\n", n)
		}
	}
	fmt.Fprintf(&b, "  loop speedup: %+.1f%% (paper: +%.0f%%, k=%d)\n",
		r.SpeedupPct, r.PaperSpeedupPct, r.PaperK)
	fmt.Fprintf(&b, "  data-terminated (br.wtop) form speedup: %+.1f%%\n", r.WhileSpeedupPct)
	return b.String()
}

// String renders the Sec. 4.5 register statistics.
func (r *RegStatsResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. 4.5 — register statistics, CPU2006 pipelined loops (HLO vs baseline)\n\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %9s %9s\n", "register file", "baseline", "HLO hints", "change", "paper")
	fmt.Fprintf(&b, "  %-22s %10d %10d %+8.1f%% %+8.0f%%\n", "general (GR)", r.Base.GR, r.Variant.GR, r.GRChange, r.PaperGR)
	fmt.Fprintf(&b, "  %-22s %10d %10d %+8.1f%% %+8.0f%%\n", "floating-point (FR)", r.Base.FR, r.Variant.FR, r.FRChange, r.PaperFR)
	fmt.Fprintf(&b, "  %-22s %10d %10d %+8.1f%% %+8.0f%%\n", "predicate (PR)", r.Base.PR, r.Variant.PR, r.PRChange, r.PaperPR)
	fmt.Fprintf(&b, "\n  average file share used: GR %.0f%%, FR %.0f%%, PR %.0f%% (paper: < 20%%)\n",
		100*r.GRShare, 100*r.FRShare, 100*r.PRShare)
	fmt.Fprintf(&b, "  spill pressure outside loops: %+.1f%% (paper: +1.8%%), spill fraction %.1f%% (paper: 1.1%%)\n",
		r.SpillPressureChange, r.SpillFraction)
	return b.String()
}

// String renders the compile-time result.
func (r *CompileTimeResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. 3.3 — compile-time cost of latency-tolerant pipelining (CPU2006)\n\n")
	fmt.Fprintf(&b, "  scheduler placements: %d -> %d (%+.1f%%)\n",
		r.BaseAttempts, r.VariantAttempts, r.AttemptIncreasePct)
	fmt.Fprintf(&b, "  projected whole-compiler increase: %+.2f%% (paper: ~+%.1f%%)\n",
		r.EstCompileTimeIncreasePct, r.PaperIncreasePct)
	return b.String()
}
