package experiments

import (
	"ltsp/internal/hlo"
	"ltsp/internal/stats"
	"ltsp/internal/workload"
)

// Fig7Thresholds are the trip-count thresholds of the headroom experiment.
var Fig7Thresholds = []float64{0, 8, 16, 32, 64}

// Fig7Result reproduces the paper's Fig. 7: the headroom experiment. All
// non-critical loads are scheduled for the typical L3 latency, with PGO
// trip counts, under five trip-count thresholds.
type Fig7Result struct {
	CPU2006, CPU2000 *SuiteResult
	// PrefetchOffGain is the combined-suite geomean gain at n=32 with
	// software prefetching disabled in both compilers (paper: 4.6%).
	PrefetchOffGain float64
	// PaperGeomean2006 / PaperGeomean2000 are the paper's reported
	// geomeans per threshold, for side-by-side reporting.
	PaperGeomean2006, PaperGeomean2000 []float64
}

// RunFig7 executes the headroom experiment.
func RunFig7() (*Fig7Result, error) {
	base := Baseline(true)
	var variants []Config
	for _, n := range Fig7Thresholds {
		variants = append(variants, WithHints(hlo.ModeAllL3, true, n))
	}
	r2006, err := EvalSuite(workload.CPU2006(), base, variants)
	if err != nil {
		return nil, err
	}
	r2000, err := EvalSuite(workload.CPU2000(), base, variants)
	if err != nil {
		return nil, err
	}

	// Prefetching disabled on both sides, n = 32, both suites combined.
	baseNoPf := base
	baseNoPf.Prefetch = false
	baseNoPf.Name = "baseline,nopf"
	varNoPf := WithHints(hlo.ModeAllL3, true, 32)
	varNoPf.Prefetch = false
	varNoPf.Name = "all-loads-L3,n=32,nopf"
	var ratios []float64
	for _, b := range workload.All() {
		r, err := EvalBenchmark(b, baseNoPf, varNoPf)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, stats.RatioFromGain(r.GainPct))
	}

	return &Fig7Result{
		CPU2006:          r2006,
		CPU2000:          r2000,
		PrefetchOffGain:  stats.GainFromRatios(ratios),
		PaperGeomean2006: []float64{0.5, 1.3, 2.4, 2.3, 2.1},
		PaperGeomean2000: []float64{-0.7, 0.8, 0.6, 0.6, 0.3},
	}, nil
}

// Fig8Result reproduces Fig. 8: the moderate general FP-L2 hint setting
// and the HLO-directed hints, with PGO and n = 32.
type Fig8Result struct {
	CPU2006, CPU2000 *SuiteResult
	// Paper geomeans: [all-FP-L2, HLO].
	PaperGeomean2006, PaperGeomean2000 []float64
}

// RunFig8 executes the prefetcher-hint experiment.
func RunFig8() (*Fig8Result, error) {
	base := Baseline(true)
	variants := []Config{
		WithHints(hlo.ModeAllFPL2, true, 32),
		WithHints(hlo.ModeHLO, true, 32),
	}
	r2006, err := EvalSuite(workload.CPU2006(), base, variants)
	if err != nil {
		return nil, err
	}
	r2000, err := EvalSuite(workload.CPU2000(), base, variants)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		CPU2006:          r2006,
		CPU2000:          r2000,
		PaperGeomean2006: []float64{1.1, 2.0},
		PaperGeomean2000: []float64{0.6, 1.3},
	}, nil
}

// Fig9Result reproduces Fig. 9: no PGO (static heuristic trip counts),
// CPU2006 only, general L3 hints vs HLO-directed hints.
type Fig9Result struct {
	CPU2006 *SuiteResult
	// Paper geomeans: [all-loads-L3, HLO].
	PaperGeomean []float64
}

// RunFig9 executes the no-PGO experiment.
func RunFig9() (*Fig9Result, error) {
	base := Baseline(false)
	variants := []Config{
		WithHints(hlo.ModeAllL3, false, 32),
		WithHints(hlo.ModeHLO, false, 32),
	}
	r2006, err := EvalSuite(workload.CPU2006(), base, variants)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		CPU2006:      r2006,
		PaperGeomean: []float64{-0.7, 2.2},
	}, nil
}
