package experiments

import (
	"ltsp/internal/hlo"
	"ltsp/internal/machine"
	"ltsp/internal/stats"
	"ltsp/internal/workload"
)

// RegStatsResult reproduces the paper's Sec. 4.5 register statistics:
// aggregate register consumption of pipelined loops across CPU2006 under
// the HLO-hints configuration vs the baseline (both without PGO).
type RegStatsResult struct {
	Base, Variant stats.RegCounts
	// GRChange/FRChange/PRChange are percentage increases in allocated
	// general/FP/predicate registers (paper: +14% / +20% / +35%).
	GRChange, FRChange, PRChange float64
	// GRShare/FRShare/PRShare are the average fractions of the register
	// files consumed under the variant (paper: less than one fifth).
	GRShare, FRShare, PRShare float64
	// SpillPressureChange is the change in estimated spill pressure
	// outside pipelined loops — stacked registers demanded beyond a caller
	// frame budget (paper: spills grow by 1.8%).
	SpillPressureChange float64
	// SpillFraction is spill pressure relative to total loop instructions
	// (paper: 1.1% of instructions are spills).
	SpillFraction float64
	// Paper values.
	PaperGR, PaperFR, PaperPR, PaperSpillChange, PaperSpillFraction float64
}

// spillFrameBudget is the number of stacked general registers a loop can
// consume before the surrounding function must spill across calls.
const spillFrameBudget = 36

// callerSpillBase models the spill traffic of the surrounding program that
// loop register pressure cannot influence; the percentage change of spills
// outside pipelined loops is computed against this common mass (the paper
// measures whole-program spills, where pipelined-loop pressure is a small
// contributor: +1.8%).
const callerSpillBase = 2500

// RunRegStats aggregates register allocation statistics.
func RunRegStats() (*RegStatsResult, error) {
	base := Baseline(false)
	variant := WithHints(hlo.ModeHLO, false, 32)
	res := &RegStatsResult{
		PaperGR: 14, PaperFR: 20, PaperPR: 35,
		PaperSpillChange: 1.8, PaperSpillFraction: 1.1,
	}
	var basePressure, varPressure, varInstrs int64
	for _, b := range workload.CPU2006() {
		for i := range b.Loops {
			spec := &b.Loops[i]
			eb, err := EvalLoop(spec, base)
			if err != nil {
				return nil, err
			}
			ev, err := EvalLoop(spec, variant)
			if err != nil {
				return nil, err
			}
			if !eb.Pipelined || !ev.Pipelined {
				continue
			}
			nb := len(spec.Gen().Body)
			res.Base.Add(eb.Reg.TotalGR(), eb.Reg.TotalFR(), eb.Reg.TotalPR(), eb.Reg.Spills, nb)
			res.Variant.Add(ev.Reg.TotalGR(), ev.Reg.TotalFR(), ev.Reg.TotalPR(), ev.Reg.Spills, nb)
			basePressure += excess(eb.Reg.TotalGR())
			varPressure += excess(ev.Reg.TotalGR())
			varInstrs += int64(nb)
		}
	}
	res.GRChange = stats.PctChange(res.Base.GR, res.Variant.GR)
	res.FRChange = stats.PctChange(res.Base.FR, res.Variant.FR)
	res.PRChange = stats.PctChange(res.Base.PR, res.Variant.PR)
	m := machine.Itanium2()
	if res.Variant.Loops > 0 {
		res.GRShare = float64(res.Variant.GR) / float64(res.Variant.Loops) / float64(m.RotGR+m.StaticGR)
		res.FRShare = float64(res.Variant.FR) / float64(res.Variant.Loops) / float64(m.RotFR+m.StaticFR)
		res.PRShare = float64(res.Variant.PR) / float64(res.Variant.Loops) / float64(m.RotPR+m.StaticPR)
	}
	res.SpillPressureChange = stats.PctChange(basePressure+callerSpillBase, varPressure+callerSpillBase)
	if varInstrs > 0 {
		res.SpillFraction = 100 * float64(varPressure+callerSpillBase/100) / float64(varInstrs*30)
	}
	return res, nil
}

func excess(gr int) int64 {
	if gr > spillFrameBudget {
		return int64(gr - spillFrameBudget)
	}
	return 0
}
