package experiments

import (
	"fmt"
	"strings"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/stats"
	"ltsp/internal/workload"
)

// The paper's conclusions suggest two design-space questions its testbed
// could not vary; the simulator can. Both ablations run the HLO-hints
// configuration against the baseline on the subset of benchmarks that
// exercises the mechanism.

// OzQPoint is one point of the memory-queue-capacity ablation.
type OzQPoint struct {
	Capacity int
	// Gain is the HLO-vs-baseline gain (geomean over the OzQ-bound
	// benchmarks) at this capacity.
	Gain float64
	// StallShare is the OzQ-full share of the variant's loop cycles.
	StallShare float64
}

// ozqBenchmarks are the workloads whose clustered requests press on the
// queue.
var ozqBenchmarks = []string{"462.libquantum", "429.mcf", "444.namd"}

// RunOzQAblation sweeps the OzQ capacity. The paper observes that
// latency-tolerant pipelining raises the OzQ-full stall component and
// concludes "the benefit could be much higher if the queuing capacities
// in the cache hierarchy were increased"; this experiment quantifies that
// claim: the gain must grow (weakly) with capacity.
func RunOzQAblation() ([]OzQPoint, error) {
	var out []OzQPoint
	for _, capQ := range []int{12, 24, 48, 96, 192} {
		base := Baseline(true)
		base.OzQCapacity = capQ
		variant := WithHints(hlo.ModeHLO, true, 32)
		variant.OzQCapacity = capQ
		var ratios []float64
		var stall, total float64
		for _, name := range ozqBenchmarks {
			b := workload.ByName(name)
			r, err := EvalBenchmark(b, base, variant)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, stats.RatioFromGain(r.GainPct))
			for _, lv := range r.VarLoops {
				stall += lv.Acct.L1DFPU
				total += lv.Acct.Total
			}
		}
		p := OzQPoint{Capacity: capQ, Gain: stats.GainFromRatios(ratios)}
		if total > 0 {
			p.StallShare = 100 * stall / total
		}
		out = append(out, p)
	}
	return out, nil
}

// RotRegPoint is one point of the rotating-register-supply ablation.
type RotRegPoint struct {
	RotRegs int
	// Gain is the HLO-vs-baseline geomean gain over the register-hungry
	// benchmarks at this rotating-file size.
	Gain float64
	// Reduced counts loops where the fallback ladder had to drop the
	// boosted latencies to allocate.
	Reduced int
}

// rotRegBenchmarks carry long boosted lifetimes (deep latency buffers).
var rotRegBenchmarks = []string{"481.wrf", "200.sixtrack", "444.namd", "429.mcf"}

// RunRotRegAblation shrinks the rotating register regions. The paper
// credits Itanium's 96+96 rotating registers for making aggressive
// latency increases affordable ("the large supply of architected
// registers is far from being exhausted"); with small rotating files the
// fallback ladder fires and the gains collapse — the quantitative version
// of that credit.
func RunRotRegAblation() ([]RotRegPoint, error) {
	var out []RotRegPoint
	for _, rot := range []int{12, 24, 48, 96} {
		base := Baseline(true)
		base.RotGR, base.RotFR = rot, rot
		variant := WithHints(hlo.ModeHLO, true, 32)
		variant.RotGR, variant.RotFR = rot, rot
		var ratios []float64
		reduced := 0
		for _, name := range rotRegBenchmarks {
			b := workload.ByName(name)
			r, err := EvalBenchmark(b, base, variant)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, stats.RatioFromGain(r.GainPct))
			for _, lv := range r.VarLoops {
				if lv.LatencyReduced {
					reduced++
				}
			}
		}
		out = append(out, RotRegPoint{
			RotRegs: rot,
			Gain:    stats.GainFromRatios(ratios),
			Reduced: reduced,
		})
	}
	return out, nil
}

// FormatAblations renders both ablations.
func FormatAblations(ozq []OzQPoint, rot []RotRegPoint) string {
	var b strings.Builder
	b.WriteString("Ablation A — OzQ capacity (paper: \"the benefit could be much higher\n")
	b.WriteString("if the queuing capacities in the cache hierarchy were increased\")\n\n")
	fmt.Fprintf(&b, "  %-10s %12s %18s\n", "capacity", "HLO gain", "OzQ-full share")
	for _, p := range ozq {
		fmt.Fprintf(&b, "  %-10d %+11.1f%% %17.1f%%\n", p.Capacity, p.Gain, p.StallShare)
	}
	b.WriteString("\nAblation B — rotating register supply (paper: \"the large number of\n")
	b.WriteString("architected registers mitigates problems with register pressure\")\n\n")
	fmt.Fprintf(&b, "  %-14s %12s %22s\n", "rotating regs", "HLO gain", "latency-reduced loops")
	for _, p := range rot {
		fmt.Fprintf(&b, "  %-14d %+11.1f%% %22d\n", p.RotRegs, p.Gain, p.Reduced)
	}
	return b.String()
}

// RotVsUnrollRow compares rotating-register code generation against
// modulo-variable-expansion unrolling for one loop under HLO hints.
type RotVsUnrollRow struct {
	Loop string
	// II and Stages are identical (the schedule is shared).
	II, Stages int
	// Unroll is the MVE unroll factor (code size multiplier).
	Unroll int
	// RotRegs is the rotating kernel's GR+FR consumption; PlainRegs the
	// unrolled kernel's.
	RotRegs, PlainRegs int
	// Failed marks loops whose MVE expansion does not fit the plain
	// register files at all.
	Failed bool
}

// RunRotVsUnroll quantifies the paper's related-work claim: "rotating
// registers easily enable clustering of load instances from successive
// iterations ... Without rotating registers, this effect could only be
// achieved with unrolling" — at U-fold code size and a far larger plain
// register footprint.
func RunRotVsUnroll() ([]RotVsUnrollRow, error) {
	var rows []RotVsUnrollRow
	for _, name := range []string{"429.mcf", "462.libquantum", "481.wrf", "444.namd", "200.sixtrack"} {
		b := workload.ByName(name)
		for i := range b.Loops {
			spec := &b.Loops[i]
			row := RotVsUnrollRow{Loop: name + "/" + spec.Name}

			compile := func(noRotation bool) (*core.Compiled, error) {
				l := spec.Gen()
				if _, err := hlo.Apply(l, hlo.Options{
					Mode: hlo.ModeHLO, Prefetch: true, TripEstimate: spec.Ref.Avg(),
				}); err != nil {
					return nil, err
				}
				return core.Pipeline(l, core.Options{
					LatencyTolerant: true, BoostDelinquent: true, NoRotation: noRotation,
				})
			}
			rot, err := compile(false)
			if err != nil {
				return nil, err
			}
			row.II, row.Stages = rot.FinalII, rot.Stages
			row.RotRegs = rot.Assignment.Stats.TotalGR() + rot.Assignment.Stats.TotalFR()
			unr, err := compile(true)
			if err != nil {
				row.Failed = true
			} else {
				row.Unroll = unr.UnrollFactor
				row.PlainRegs = unr.Assignment.Stats.TotalGR() + unr.Assignment.Stats.TotalFR()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatRotVsUnroll renders the comparison table.
func FormatRotVsUnroll(rows []RotVsUnrollRow) string {
	var b strings.Builder
	b.WriteString("Ablation C — rotation vs unrolling (paper related work: without\n")
	b.WriteString("rotating registers, clustering requires unrolling)\n\n")
	fmt.Fprintf(&b, "  %-28s %4s %7s %8s %9s %10s\n",
		"loop", "II", "stages", "unroll", "rot regs", "plain regs")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(&b, "  %-28s %4d %7d %8s %9d %10s\n",
				r.Loop, r.II, r.Stages, "-", r.RotRegs, "OVERFLOW")
			continue
		}
		fmt.Fprintf(&b, "  %-28s %4d %7d %7dx %9d %10d\n",
			r.Loop, r.II, r.Stages, r.Unroll, r.RotRegs, r.PlainRegs)
	}
	return b.String()
}
