package experiments

import (
	"strings"
	"testing"
)

func TestFormatFig5(t *testing.T) {
	analytic := AnalyticFig5()
	validation := []Fig5Validation{
		{Level: "memory", K: 3, D: 2, MeasuredL: 199, Measured: 67.0, Predicted: 67.0},
	}
	s := FormatFig5(analytic, validation)
	for _, want := range []string{"k \\ c", "memory", "67.0%", "simulation validation"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatFig5 missing %q", want)
		}
	}
}

func TestSuiteResultTable(t *testing.T) {
	r := &SuiteResult{
		Suite:      "CPU2006",
		Configs:    []Config{{Name: "a"}, {Name: "b"}},
		Benchmarks: []string{"429.mcf"},
		Gains:      [][]float64{{1.5, -2.25}},
		Geomean:    []float64{1.5, -2.25},
	}
	s := r.Table()
	for _, want := range []string{"CPU2006", "429.mcf", "1.5%", "-2.2%", "geomean"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table missing %q in:\n%s", want, s)
		}
	}
}

func TestResultStringers(t *testing.T) {
	suite := &SuiteResult{
		Suite:      "CPU2006",
		Configs:    []Config{{Name: "x"}, {Name: "y"}},
		Benchmarks: []string{"400.perlbench"},
		Gains:      [][]float64{{0, 0}},
		Geomean:    []float64{0, 0},
	}
	f7 := &Fig7Result{CPU2006: suite, CPU2000: suite,
		PaperGeomean2006: []float64{1, 2, 3, 4, 5}, PaperGeomean2000: []float64{1, 2, 3, 4, 5}}
	if s := f7.String(); !strings.Contains(s, "Fig. 7") || !strings.Contains(s, "paper geomean") {
		t.Error("Fig7 string malformed")
	}
	f8 := &Fig8Result{CPU2006: suite, CPU2000: suite,
		PaperGeomean2006: []float64{1, 2}, PaperGeomean2000: []float64{1, 2}}
	if s := f8.String(); !strings.Contains(s, "Fig. 8") {
		t.Error("Fig8 string malformed")
	}
	f9 := &Fig9Result{CPU2006: suite, PaperGeomean: []float64{1, 2}}
	if s := f9.String(); !strings.Contains(s, "Fig. 9") {
		t.Error("Fig9 string malformed")
	}
	f10 := &Fig10Result{}
	if s := f10.String(); !strings.Contains(s, "BE_EXE_BUBBLE") {
		t.Error("Fig10 string malformed")
	}
	cs := &CaseStudyResult{AvgTrip: 2.3, DelinquentLoads: []string{"a", "b"},
		ClusterK: map[string]int{"a": 3}}
	s := cs.String()
	if !strings.Contains(s, "clustering k=3") || !strings.Contains(s, "critical") {
		t.Errorf("case study string malformed:\n%s", s)
	}
	rs := &RegStatsResult{}
	if s := rs.String(); !strings.Contains(s, "register file") {
		t.Error("regstats string malformed")
	}
	ct := &CompileTimeResult{}
	if s := ct.String(); !strings.Contains(s, "scheduler placements") {
		t.Error("compiletime string malformed")
	}
}

func TestFormatAblations(t *testing.T) {
	s := FormatAblations(
		[]OzQPoint{{Capacity: 48, Gain: 9.1, StallShare: 1.3}},
		[]RotRegPoint{{RotRegs: 96, Gain: 9.3, Reduced: 0}},
	)
	for _, want := range []string{"OzQ capacity", "rotating register supply", "48", "96"} {
		if !strings.Contains(s, want) {
			t.Errorf("ablation format missing %q", want)
		}
	}
}

func TestConfigNames(t *testing.T) {
	if Baseline(true).Name != "baseline" {
		t.Error("baseline name")
	}
	c := WithHints(3, true, 32) // ModeHLO
	if !strings.Contains(c.Name, "n=32") {
		t.Errorf("config name %q", c.Name)
	}
	if WithHints(3, true, 0).Name == c.Name {
		t.Error("threshold not reflected in the name")
	}
}
