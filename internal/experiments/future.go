package experiments

import (
	"fmt"
	"strings"

	"ltsp/internal/hlo"
	"ltsp/internal/workload"
)

// The paper's Sec. 6 outlook names three directions "to make this
// information more precise and consequently increase the net gain":
// dynamic cache-miss sampling, refined heuristics, and trip-count
// versioning. Two of them are implemented here and evaluated on the same
// benchmark models.

// VersioningResult compares static trip-count thresholds against runtime
// trip-count versioning (two compiled kernels dispatched on the actual
// trip count).
type VersioningResult struct {
	// CPU2000PGO: the mesa case — the training/reference divergence that
	// defeats every static threshold is fully repaired by versioning.
	CPU2000PGO *SuiteResult
	// CPU2006NoPGO: the gobmk/h264ref cases — static estimates that
	// over-pipeline and over-boost are repaired at runtime.
	CPU2006NoPGO *SuiteResult
}

// RunVersioning evaluates all-L3 boosting with the static n=32 threshold
// against the same boosting dispatched by runtime trip counts.
func RunVersioning() (*VersioningResult, error) {
	mk := func(pgo bool) []Config {
		static := WithHints(hlo.ModeAllL3, pgo, 32)
		versioned := WithHints(hlo.ModeAllL3, pgo, 32)
		versioned.Versioned = true
		versioned.Name = "all-L3,versioned"
		return []Config{static, versioned}
	}
	r2000, err := EvalSuite(workload.CPU2000(), Baseline(true), mk(true))
	if err != nil {
		return nil, err
	}
	r2006, err := EvalSuite(workload.CPU2006(), Baseline(false), mk(false))
	if err != nil {
		return nil, err
	}
	return &VersioningResult{CPU2000PGO: r2000, CPU2006NoPGO: r2006}, nil
}

// String renders the versioning comparison.
func (r *VersioningResult) String() string {
	var b strings.Builder
	b.WriteString("Outlook A — trip-count versioning (paper Sec. 6)\n")
	b.WriteString("Two kernels per loop; each execution dispatches on its actual trip count.\n\n")
	b.WriteString("CPU2000 with PGO (the 177.mesa training/reference divergence):\n\n")
	b.WriteString(r.CPU2000PGO.Table())
	b.WriteString("\nCPU2006 without PGO (static estimates over-boost short loops):\n\n")
	b.WriteString(r.CPU2006NoPGO.Table())
	return b.String()
}

// SamplingResult compares the static HLO prefetch-efficiency heuristics
// against hints derived from dynamic cache-miss sampling of a training
// run.
type SamplingResult struct {
	CPU2006 *SuiteResult // no PGO, n = 32
}

// RunMissSampling evaluates sampled hints on CPU2006 without PGO — the
// regime where the paper's static heuristics leave the gobmk worst case
// on the table.
func RunMissSampling() (*SamplingResult, error) {
	static := WithHints(hlo.ModeHLO, false, 32)
	sampled := WithHints(hlo.ModeHLO, false, 32)
	sampled.HintSampling = true
	sampled.Name = "miss-sampled"
	r, err := EvalSuite(workload.CPU2006(), Baseline(false), []Config{static, sampled})
	if err != nil {
		return nil, err
	}
	return &SamplingResult{CPU2006: r}, nil
}

// String renders the sampling comparison.
func (r *SamplingResult) String() string {
	var b strings.Builder
	b.WriteString("Outlook B — dynamic cache-miss sampling (paper Sec. 6)\n")
	b.WriteString("Hints derived from observed per-load-site service latencies on a\n")
	b.WriteString("training run, replacing the static prefetch-efficiency heuristics.\n\n")
	b.WriteString(r.CPU2006.Table())
	hloIdx, sampledIdx := 0, 1
	fmt.Fprintf(&b, "\nheadline: static heuristics %+.1f%% vs sampled hints %+.1f%% (geomean)\n",
		r.CPU2006.Geomean[hloIdx], r.CPU2006.Geomean[sampledIdx])
	return b.String()
}
