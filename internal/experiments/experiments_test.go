package experiments

import (
	"math"
	"testing"

	"ltsp/internal/hlo"
	"ltsp/internal/workload"
)

// gainOf looks up one benchmark's gain in a suite result.
func gainOf(t *testing.T, r *SuiteResult, bench string, cfg int) float64 {
	t.Helper()
	for i, n := range r.Benchmarks {
		if n == bench {
			return r.Gains[i][cfg]
		}
	}
	t.Fatalf("benchmark %s not in result", bench)
	return 0
}

// TestFig5ValidationMatchesFormula checks the simulator against the
// paper's Equ. 2: for every (level, k) point the measured stall reduction
// must match 100*(1-(1-c)/k) within a few points.
func TestFig5ValidationMatchesFormula(t *testing.T) {
	pts, err := RunFig5Validation()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 12 {
		t.Fatalf("only %d validation points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Measured-p.Predicted) > 3 {
			t.Errorf("%s k=%d: measured %.1f%% vs predicted %.1f%%",
				p.Level, p.K, p.Measured, p.Predicted)
		}
	}
}

func TestAnalyticFig5(t *testing.T) {
	pts := AnalyticFig5()
	if len(pts) != 32 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// c = 1 gives full reduction; k = 1 gives 100*c.
		if p.C == 1 && math.Abs(p.Reduction-100) > 1e-9 {
			t.Errorf("full coverage k=%d: %.1f", p.K, p.Reduction)
		}
		if p.K == 1 && math.Abs(p.Reduction-100*p.C) > 1e-9 {
			t.Errorf("no clustering c=%.2f: %.1f", p.C, p.Reduction)
		}
		if p.Reduction < 0 || p.Reduction > 100 {
			t.Errorf("reduction out of range: %+v", p)
		}
	}
	// The paper's headline point: k=3 at c=0.01 reduces stalls by about
	// two thirds.
	for _, p := range pts {
		if p.K == 3 && p.C == 0.01 && (p.Reduction < 66 || p.Reduction > 68) {
			t.Errorf("k=3,c=0.01: %.1f%%, want ~67%%", p.Reduction)
		}
	}
}

// TestFig7Shape asserts the headroom experiment's qualitative structure.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	g06 := r.CPU2006.Geomean
	// Thresholds help: the geomean at n=16/32 beats n=0.
	if !(g06[2] > g06[0] && g06[3] > g06[0]) {
		t.Errorf("CPU2006 geomeans %v: thresholds do not help", g06)
	}
	// The n=64 threshold forfeits some gains (wrf-class loops).
	if !(g06[4] < g06[3]) {
		t.Errorf("CPU2006 geomeans %v: no decline at n=64", g06)
	}
	// CPU2000 starts negative without a threshold.
	g00 := r.CPU2000.Geomean
	if g00[0] >= 0 {
		t.Errorf("CPU2000 n=0 geomean = %.1f, want negative (paper: -0.7)", g00[0])
	}
	if !(g00[1] > g00[0]) {
		t.Errorf("CPU2000 geomeans %v: n=8 does not beat n=0", g00)
	}

	// 464.h264ref: the low-threshold regression disappears from n=16 on.
	for ci, n := range Fig7Thresholds {
		g := gainOf(t, r.CPU2006, "464.h264ref", ci)
		if n < 16 && g > -8 {
			t.Errorf("h264ref at n=%g: %.1f%%, want a substantial loss", n, g)
		}
		if n >= 16 && math.Abs(g) > 1 {
			t.Errorf("h264ref at n=%g: %.1f%%, want ~0", n, g)
		}
	}
	// 177.mesa: the training/reference divergence defeats every threshold.
	for ci := range Fig7Thresholds {
		if g := gainOf(t, r.CPU2000, "177.mesa", ci); g > -5 {
			t.Errorf("mesa at threshold %d: %.1f%%, loss must persist", ci, g)
		}
	}
	// Large gains survive the n=32 threshold (paper: mcf +14, namd +10,
	// libquantum +7, wrf +7, art +12, sixtrack +8).
	for bench, min := range map[string]float64{
		"429.mcf": 5, "444.namd": 5, "462.libquantum": 4, "481.wrf": 5,
	} {
		if g := gainOf(t, r.CPU2006, bench, 3); g < min {
			t.Errorf("%s at n=32: %.1f%%, want >= %.0f", bench, g, min)
		}
	}
	for bench, min := range map[string]float64{"179.art": 6, "200.sixtrack": 6} {
		if g := gainOf(t, r.CPU2000, bench, 3); g < min {
			t.Errorf("%s at n=32: %.1f%%, want >= %.0f", bench, g, min)
		}
	}
	// wrf's gain is gone at n=64 (average trip 48 < 64).
	if g := gainOf(t, r.CPU2006, "481.wrf", 4); math.Abs(g) > 1 {
		t.Errorf("wrf at n=64: %.1f%%, want ~0", g)
	}
	// Disabling prefetching enlarges the headroom (paper: 4.6% vs 2.2%).
	if r.PrefetchOffGain < r.CPU2006.Geomean[3] {
		t.Errorf("prefetch-off gain %.1f%% not larger than the default %.1f%%",
			r.PrefetchOffGain, r.CPU2006.Geomean[3])
	}
}

// TestFig8Shape asserts the prefetcher-hints experiment structure.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	// Both moderate settings gain on both suites.
	for _, g := range append(append([]float64{}, r.CPU2006.Geomean...), r.CPU2000.Geomean...) {
		if g <= 0 {
			t.Errorf("geomean %.1f%% not positive", g)
		}
	}
	// HLO hints give roughly twice the FP-L2 default (paper: 1.1 -> 2.0).
	if !(r.CPU2006.Geomean[1] > r.CPU2006.Geomean[0]) {
		t.Errorf("CPU2006: HLO %.1f%% does not beat FP-L2 %.1f%%",
			r.CPU2006.Geomean[1], r.CPU2006.Geomean[0])
	}
	// The mesa loss disappears under selective hints.
	if g := gainOf(t, r.CPU2000, "177.mesa", 1); math.Abs(g) > 1 {
		t.Errorf("mesa under HLO hints: %.1f%%, want ~0", g)
	}
	// Integer benchmarks now benefit too (paper: mcf +12).
	if g := gainOf(t, r.CPU2006, "429.mcf", 1); g < 5 {
		t.Errorf("mcf under HLO hints: %.1f%%", g)
	}
	// No substantial regressions remain (paper's key observation).
	for bi, bench := range r.CPU2006.Benchmarks {
		if g := r.CPU2006.Gains[bi][1]; g < -2 {
			t.Errorf("%s regresses %.1f%% under HLO hints with PGO", bench, g)
		}
	}
}

// TestFig9Shape asserts the no-PGO experiment structure.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	allL3, hloGain := r.CPU2006.Geomean[0], r.CPU2006.Geomean[1]
	// Load-latency information compensates for missing trip counts:
	// indiscriminate boosting is near zero or negative, HLO hints win
	// clearly (paper: -0.7 vs +2.2).
	if allL3 > 0.5 {
		t.Errorf("all-L3 without PGO: %.1f%%, want <= 0.5", allL3)
	}
	if hloGain < 1 {
		t.Errorf("HLO without PGO: %.1f%%, want >= 1", hloGain)
	}
	if hloGain <= allL3 {
		t.Error("HLO hints do not beat indiscriminate boosting")
	}
	// 445.gobmk: the worst case persists under HLO hints (paper keeps a
	// loss), but selective hints shrink it.
	lossAll := gainOf(t, r.CPU2006, "445.gobmk", 0)
	lossHLO := gainOf(t, r.CPU2006, "445.gobmk", 1)
	if lossHLO > -2 {
		t.Errorf("gobmk loss gone under HLO: %.1f%%", lossHLO)
	}
	if lossHLO < lossAll {
		t.Errorf("HLO hints made gobmk worse: %.1f vs %.1f", lossHLO, lossAll)
	}
	// h264ref is protected by HLO hints even without PGO.
	if g := gainOf(t, r.CPU2006, "464.h264ref", 1); math.Abs(g) > 1 {
		t.Errorf("h264ref under HLO/noPGO: %.1f%%", g)
	}
	// Named winners (paper: namd +11, libquantum +14, wrf +7, mcf +10).
	for bench, min := range map[string]float64{
		"444.namd": 4, "462.libquantum": 4, "481.wrf": 5, "429.mcf": 5,
	} {
		if g := gainOf(t, r.CPU2006, bench, 1); g < min {
			t.Errorf("%s: %.1f%%, want >= %.0f", bench, g, min)
		}
	}
}

// TestFig10Directions asserts every counter moves the paper's way.
func TestFig10Directions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	if r.ExeChange >= 0 {
		t.Errorf("BE_EXE_BUBBLE %+.1f%%, want a reduction (paper: -12%%)", r.ExeChange)
	}
	if r.RSEChange <= 0 {
		t.Errorf("BE_RSE_BUBBLE %+.1f%%, want an increase (paper: +14%%)", r.RSEChange)
	}
	if r.L1DFPUChange < 0 {
		t.Errorf("BE_L1D_FPU_BUBBLE %+.1f%%, want >= 0 (paper: +8%%)", r.L1DFPUChange)
	}
	if r.UnstalledChange <= 0 {
		t.Errorf("unstalled %+.1f%%, want a slight increase (paper: +1.2%%)", r.UnstalledChange)
	}
	if r.TotalChange >= 0 {
		t.Errorf("total %+.1f%%, the optimization must win overall", r.TotalChange)
	}
	if r.OzQShareVar < r.OzQShareBase {
		t.Errorf("OzQ-full share fell: %.1f -> %.1f", r.OzQShareBase, r.OzQShareVar)
	}
}

// TestCaseStudy asserts the Sec. 4.4 reproduction.
func TestCaseStudy(t *testing.T) {
	r, err := RunCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AvgTrip-2.3) > 0.05 {
		t.Errorf("avg trip = %.2f, want 2.3", r.AvgTrip)
	}
	if len(r.DelinquentLoads) < 4 {
		t.Errorf("delinquent loads = %v, want the chase + 4 payload loads", r.DelinquentLoads)
	}
	// The decision trace must name the pointer-chase load critical.
	foundChase := false
	for _, n := range r.CriticalLoads {
		if n == "node = node->child" {
			foundChase = true
		}
	}
	if !foundChase {
		t.Errorf("critical loads = %v, want the chase load among them", r.CriticalLoads)
	}
	if r.Outcome != "pipelined" {
		t.Errorf("outcome = %q, want pipelined", r.Outcome)
	}
	// Every boosted payload load clusters (paper: k = 2).
	boosted := 0
	for name, k := range r.ClusterK {
		boosted++
		if k < 2 {
			t.Errorf("%s: k = %d, want >= 2", name, k)
		}
	}
	if boosted < 4 {
		t.Errorf("only %d payload loads boosted", boosted)
	}
	if r.SpeedupPct < 20 || r.SpeedupPct > 70 {
		t.Errorf("loop speedup = %.1f%%, want in the 40%%-ballpark", r.SpeedupPct)
	}
}

// TestRegStats asserts Sec. 4.5: register usage grows, in the paper's
// ordering (GR < FR < PR), while staying well inside the register files.
func TestRegStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunRegStats()
	if err != nil {
		t.Fatal(err)
	}
	if r.GRChange <= 0 || r.FRChange <= 0 || r.PRChange <= 0 {
		t.Errorf("register changes %+.1f/%+.1f/%+.1f, all must grow",
			r.GRChange, r.FRChange, r.PRChange)
	}
	if !(r.GRChange < r.FRChange && r.FRChange < r.PRChange) {
		t.Errorf("ordering GR(%+.1f) < FR(%+.1f) < PR(%+.1f) violated",
			r.GRChange, r.FRChange, r.PRChange)
	}
	// "less than one fifth of the available registers".
	for name, share := range map[string]float64{
		"GR": r.GRShare, "FR": r.FRShare, "PR": r.PRShare,
	} {
		if share <= 0 || share > 0.2 {
			t.Errorf("%s share = %.2f, want (0, 0.2]", name, share)
		}
	}
	if r.SpillPressureChange < 0 || r.SpillPressureChange > 10 {
		t.Errorf("spill pressure change = %+.1f%%, want small and non-negative", r.SpillPressureChange)
	}
}

// TestCompileTime asserts the Sec. 3.3 claim: the scheduling-work change
// stays in the noise range.
func TestCompileTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := RunCompileTime()
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseAttempts == 0 || r.VariantAttempts == 0 {
		t.Error("no attempts measured")
	}
	if math.Abs(r.EstCompileTimeIncreasePct) > 2 {
		t.Errorf("projected compile-time change %+.2f%%, want noise range (paper: +0.5%%)",
			r.EstCompileTimeIncreasePct)
	}
}

// TestEvalBenchmarkIdentity: evaluating the baseline against itself gives
// zero gain for every benchmark.
func TestEvalBenchmarkIdentity(t *testing.T) {
	base := Baseline(true)
	for _, name := range []string{"429.mcf", "177.mesa", "464.h264ref"} {
		b := workload.ByName(name)
		r, err := EvalBenchmark(b, base, base)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.GainPct) > 1e-9 {
			t.Errorf("%s: self-gain = %f", name, r.GainPct)
		}
	}
}

// TestEvalLoopFields sanity-checks one loop evaluation end to end.
func TestEvalLoopFields(t *testing.T) {
	spec := &workload.ByName("464.h264ref").Loops[0]
	ev, err := EvalLoop(spec, WithHints(hlo.ModeAllL3, true, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Pipelined || ev.II < 1 || ev.Stages < 1 {
		t.Errorf("eval = %+v", ev)
	}
	if ev.Boosted == 0 {
		t.Error("no loads boosted under all-L3 with n=0")
	}
	if ev.Cycles <= 0 {
		t.Error("no cycles measured")
	}
	total := ev.Acct.Unstalled + ev.Acct.Exe + ev.Acct.L1DFPU + ev.Acct.RSE + ev.Acct.Flush + ev.Acct.FE
	if math.Abs(total-ev.Acct.Total) > 1e-6*ev.Acct.Total {
		t.Errorf("accounting does not sum: %f vs %f", total, ev.Acct.Total)
	}
}

// TestThresholdGatesBoosting: the same loop boosted at n=0 and not at a
// threshold above its trip count.
func TestThresholdGatesBoosting(t *testing.T) {
	spec := &workload.ByName("464.h264ref").Loops[0] // trip 10
	at0, err := EvalLoop(spec, WithHints(hlo.ModeAllL3, true, 0))
	if err != nil {
		t.Fatal(err)
	}
	at32, err := EvalLoop(spec, WithHints(hlo.ModeAllL3, true, 32))
	if err != nil {
		t.Fatal(err)
	}
	if at0.Boosted == 0 || at32.Boosted != 0 {
		t.Errorf("boosted: n=0 %d, n=32 %d", at0.Boosted, at32.Boosted)
	}
	if at0.Stages <= at32.Stages {
		t.Error("boosting did not add stages")
	}
}

// TestDelinquentOverridesThreshold: mcf's chase loop is boosted under HLO
// hints even at n=32 (trip 2.3), via the delinquent-load override.
func TestDelinquentOverridesThreshold(t *testing.T) {
	var spec *workload.LoopSpec
	for i := range workload.ByName("429.mcf").Loops {
		if workload.ByName("429.mcf").Loops[i].Name == "refresh_potential" {
			spec = &workload.ByName("429.mcf").Loops[i]
		}
	}
	ev, err := EvalLoop(spec, WithHints(hlo.ModeHLO, true, 32))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Boosted == 0 {
		t.Error("delinquent loads not boosted below the trip threshold")
	}
	// Under the headroom mode (no delinquent marking) the threshold wins.
	ev2, err := EvalLoop(spec, WithHints(hlo.ModeAllL3, true, 32))
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Boosted != 0 {
		t.Error("all-L3 mode boosted below the threshold")
	}
}

// TestPipelineGateUsesEstimates: gobmk is pipelined only under static
// estimation (PGO sees the true low trip count).
func TestPipelineGateUsesEstimates(t *testing.T) {
	spec := &workload.ByName("445.gobmk").Loops[0]
	pgo, err := EvalLoop(spec, Baseline(true))
	if err != nil {
		t.Fatal(err)
	}
	static, err := EvalLoop(spec, Baseline(false))
	if err != nil {
		t.Fatal(err)
	}
	if pgo.Pipelined {
		t.Error("PGO pipelined the low-trip gobmk loop")
	}
	if !static.Pipelined {
		t.Error("static estimation did not pipeline gobmk")
	}
}

// TestOzQAblation: the paper's closing conjecture — deeper memory queues
// raise the optimization's benefit — must hold monotonically (weakly).
func TestOzQAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	pts, err := RunOzQAblation()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Gain < pts[i-1].Gain-0.3 {
			t.Errorf("gain fell with capacity: %+v", pts)
		}
	}
	if first, last := pts[0], pts[len(pts)-1]; last.Gain <= first.Gain {
		t.Errorf("no benefit from deeper queues: %.1f -> %.1f", first.Gain, last.Gain)
	}
	// The stall share must shrink as the queue deepens.
	if pts[0].StallShare <= pts[len(pts)-1].StallShare {
		t.Errorf("OzQ-full share did not shrink: %+v", pts)
	}
}

// TestRotRegAblation: with small rotating files the fallback ladder fires
// and the gains collapse; the architectural 96 is comfortably enough.
func TestRotRegAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	pts, err := RunRotRegAblation()
	if err != nil {
		t.Fatal(err)
	}
	small, full := pts[0], pts[len(pts)-1]
	if small.Reduced == 0 {
		t.Error("tiny rotating file never forced latency reduction")
	}
	if full.Reduced != 0 {
		t.Errorf("architectural file forced %d latency reductions", full.Reduced)
	}
	if small.Gain >= full.Gain {
		t.Errorf("gains did not collapse with the small file: %.1f vs %.1f",
			small.Gain, full.Gain)
	}
}

// TestVersioning: the paper's trip-count versioning outlook. Dispatching
// on the actual trip count must repair the static-threshold failure modes
// (mesa's training/reference divergence, gobmk/h264ref under static
// estimates) while keeping the long-trip gains.
func TestVersioning(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r, err := RunVersioning()
	if err != nil {
		t.Fatal(err)
	}
	// mesa: every static threshold loses ~19%; versioning recovers most.
	staticLoss := gainOf(t, r.CPU2000PGO, "177.mesa", 0)
	versioned := gainOf(t, r.CPU2000PGO, "177.mesa", 1)
	if versioned < staticLoss+5 {
		t.Errorf("mesa: versioning %.1f%% did not repair the static %.1f%%", versioned, staticLoss)
	}
	// Without PGO the whole-suite geomean flips from ~0 to clearly positive.
	if !(r.CPU2006NoPGO.Geomean[1] > r.CPU2006NoPGO.Geomean[0]+0.5) {
		t.Errorf("versioning does not beat the static threshold: %v", r.CPU2006NoPGO.Geomean)
	}
	for _, bench := range []string{"445.gobmk", "464.h264ref"} {
		s, v := gainOf(t, r.CPU2006NoPGO, bench, 0), gainOf(t, r.CPU2006NoPGO, bench, 1)
		if v < s+5 {
			t.Errorf("%s: versioned %.1f%% vs static %.1f%%", bench, v, s)
		}
	}
	// The long-trip winners keep their gains.
	if g := gainOf(t, r.CPU2006NoPGO, "481.wrf", 1); g < 5 {
		t.Errorf("wrf under versioning: %.1f%%", g)
	}
}

// TestMissSampling: the paper's dynamic cache-miss sampling outlook.
// Hints from observed latencies must match or beat the static heuristics
// and eliminate the gobmk worst case.
func TestMissSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r, err := RunMissSampling()
	if err != nil {
		t.Fatal(err)
	}
	static, sampled := r.CPU2006.Geomean[0], r.CPU2006.Geomean[1]
	if sampled < static-0.2 {
		t.Errorf("sampled hints %.1f%% worse than static heuristics %.1f%%", sampled, static)
	}
	// gobmk: the static heuristics hint its cache-hot indirect loads;
	// sampling observes the low latencies and leaves them alone.
	g := gainOf(t, r.CPU2006, "445.gobmk", 1)
	if g < -1 {
		t.Errorf("gobmk still loses %.1f%% under sampled hints", g)
	}
	// The genuine delinquents keep their hints and gains.
	for _, bench := range []string{"429.mcf", "462.libquantum", "481.wrf"} {
		if g := gainOf(t, r.CPU2006, bench, 1); g < 5 {
			t.Errorf("%s under sampled hints: %.1f%%", bench, g)
		}
	}
}

// TestRotVsUnroll: the related-work claim — clustering without rotation
// costs U-fold code size and a far larger plain-register footprint, and
// deep latency buffers may not fit at all.
func TestRotVsUnroll(t *testing.T) {
	rows, err := RunRotVsUnroll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	deepBuffers := 0
	for _, r := range rows {
		if r.Failed {
			continue
		}
		if r.Unroll < 2 {
			t.Errorf("%s: unroll factor %d, pipelined values must span iterations", r.Loop, r.Unroll)
		}
		if r.PlainRegs < r.RotRegs {
			t.Errorf("%s: unrolled kernel uses fewer registers (%d) than rotating (%d)",
				r.Loop, r.PlainRegs, r.RotRegs)
		}
		if r.Unroll >= 8 {
			deepBuffers++
		}
	}
	if deepBuffers == 0 {
		t.Error("no loop required a deep unroll; the comparison shows nothing")
	}
}
