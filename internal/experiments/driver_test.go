package experiments

import (
	"testing"

	"ltsp/internal/hlo"
	"ltsp/internal/profile"
	"ltsp/internal/workload"
)

func TestConfigModelOverrides(t *testing.T) {
	c := Baseline(true)
	if m := c.model(); m.OzQCapacity != 48 || m.RotGR != 96 {
		t.Errorf("default model overridden: %+v", m)
	}
	c.OzQCapacity, c.RotGR, c.RotFR = 16, 24, 32
	m := c.model()
	if m.OzQCapacity != 16 || m.RotGR != 24 || m.RotFR != 32 {
		t.Errorf("overrides not applied: %+v", m)
	}
}

func TestVersionedEvalUsesShortKernel(t *testing.T) {
	// mesa: estimate 154 (train), actual trips 8. The non-versioned
	// variant boosts (and loses); the versioned one dispatches every
	// execution to the conservative kernel.
	spec := &workload.ByName("177.mesa").Loops[0]
	static := WithHints(hlo.ModeAllL3, true, 32)
	versioned := static
	versioned.Versioned = true

	base, err := EvalLoop(spec, Baseline(true))
	if err != nil {
		t.Fatal(err)
	}
	evStatic, err := EvalLoop(spec, static)
	if err != nil {
		t.Fatal(err)
	}
	evVersioned, err := EvalLoop(spec, versioned)
	if err != nil {
		t.Fatal(err)
	}
	if evStatic.Cycles < base.Cycles*1.5 {
		t.Errorf("static boosting did not hurt mesa: %.0f vs %.0f", evStatic.Cycles, base.Cycles)
	}
	// Versioning dispatches every reference execution to the conservative
	// kernel; the only residual cost is the versioned function's larger
	// stacked register frame (both kernels live in it), charged by the
	// RSE model.
	if evVersioned.Cycles > base.Cycles*1.45 {
		t.Errorf("versioned run not dispatching short executions: %.0f vs base %.0f",
			evVersioned.Cycles, base.Cycles)
	}
	if evVersioned.Cycles > evStatic.Cycles*0.75 {
		t.Errorf("versioning recovered too little: %.0f vs static %.0f",
			evVersioned.Cycles, evStatic.Cycles)
	}
}

func TestVersionedKeepsLongTripGains(t *testing.T) {
	spec := &workload.ByName("481.wrf").Loops[0] // trip 48 >= gate 32
	static := WithHints(hlo.ModeHLO, true, 32)
	versioned := static
	versioned.Versioned = true
	evStatic, err := EvalLoop(spec, static)
	if err != nil {
		t.Fatal(err)
	}
	evVersioned, err := EvalLoop(spec, versioned)
	if err != nil {
		t.Fatal(err)
	}
	if diff := evVersioned.Cycles / evStatic.Cycles; diff > 1.02 || diff < 0.98 {
		t.Errorf("long-trip loop changed under versioning: ratio %.3f", diff)
	}
}

func TestSampleLoopHints(t *testing.T) {
	cfg := WithHints(hlo.ModeHLO, false, 32)
	cfg.HintSampling = true

	// The mcf chase: delinquent loads average near memory latency.
	var chase *workload.LoopSpec
	for i := range workload.ByName("429.mcf").Loops {
		if workload.ByName("429.mcf").Loops[i].Name == "refresh_potential" {
			chase = &workload.ByName("429.mcf").Loops[i]
		}
	}
	hints, err := sampleLoopHints(chase, cfg, profile.Static(chase.Facts))
	if err != nil {
		t.Fatal(err)
	}
	delinquent := 0
	for _, h := range hints {
		if h.delinquent {
			delinquent++
		}
	}
	if delinquent < 2 {
		t.Errorf("sampling found %d delinquent loads in the chase, want >= 2 (hints: %v)",
			delinquent, hints)
	}

	// h264ref: cache-hot loads must receive no hints at all.
	sad := &workload.ByName("464.h264ref").Loops[0]
	hints, err = sampleLoopHints(sad, cfg, profile.PGO(sad.Train))
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 0 {
		t.Errorf("sampling hinted cache-hot loads: %v", hints)
	}
}

func TestSampledHintsAppliedToCompilation(t *testing.T) {
	spec := &workload.ByName("462.libquantum").Loops[0]
	cfg := WithHints(hlo.ModeHLO, false, 32)
	cfg.HintSampling = true
	ev, err := EvalLoop(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Boosted == 0 {
		t.Error("sampled hints produced no boosted loads on the streaming loop")
	}
}

func TestSuiteResultStructure(t *testing.T) {
	benches := []*workload.Benchmark{workload.ByName("464.h264ref")}
	r, err := EvalSuite(benches, Baseline(true), []Config{
		WithHints(hlo.ModeAllL3, true, 0),
		WithHints(hlo.ModeAllL3, true, 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 1 || len(r.Gains) != 1 || len(r.Gains[0]) != 2 {
		t.Fatalf("shape: %+v", r)
	}
	if len(r.Results) != 1 || len(r.Results[0]) != 2 {
		t.Fatal("full results not recorded")
	}
	// h264ref: loses at n=0, protected at n=32.
	if !(r.Gains[0][0] < -5 && r.Gains[0][1] > -1) {
		t.Errorf("gains = %v", r.Gains[0])
	}
	if r.Geomean[0] >= r.Geomean[1] {
		t.Error("geomeans inconsistent with gains")
	}
}

func TestAcctFAggregation(t *testing.T) {
	var a AcctF
	a.addF(AcctF{Total: 1, Unstalled: 0.5, Exe: 0.3, L1DFPU: 0.1, RSE: 0.05, Flush: 0.03, FE: 0.02}, 2)
	if a.Total != 2 || a.Unstalled != 1 || a.Exe != 0.6 {
		t.Errorf("addF: %+v", a)
	}
}
