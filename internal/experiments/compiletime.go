package experiments

import (
	"ltsp/internal/hlo"
	"ltsp/internal/workload"
)

// CompileTimeResult reproduces the paper's Sec. 3.3 compile-time
// observation: latency-tolerant pipelining can force extra
// modulo-scheduling attempts (the fallback ladder after register
// allocation failures), but the cost stays in the noise range (paper:
// ~0.5% compile time).
type CompileTimeResult struct {
	// BaseAttempts / VariantAttempts are total scheduler placement
	// operations across every pipelined loop of CPU2006.
	BaseAttempts, VariantAttempts int64
	// AttemptIncreasePct is the relative increase of scheduler work.
	AttemptIncreasePct float64
	// EstCompileTimeIncreasePct scales the attempt increase by the modulo
	// scheduler's share of total compile time (~5% in a production
	// compiler), giving the paper-comparable whole-compiler figure.
	EstCompileTimeIncreasePct float64
	// LatencyReduced / IIBumps count how often the fallback ladder fired.
	LatencyReduced, IIBumps int
	// PaperIncreasePct is the paper's reported compile-time increase.
	PaperIncreasePct float64
}

// pipelinerCompileShare is the modulo scheduler's assumed share of whole-
// compiler time when projecting attempt increases onto compile time.
const pipelinerCompileShare = 0.05

// RunCompileTime measures scheduling-attempt inflation. Benchmarks are
// evaluated on the Workers()-wide pool and their attempt counts summed
// in suite order, identical to the sequential loop at any width.
func RunCompileTime() (*CompileTimeResult, error) {
	base := Baseline(false)
	variant := WithHints(hlo.ModeHLO, false, 32)
	res := &CompileTimeResult{PaperIncreasePct: 0.5}
	benches := workload.CPU2006()
	type attempts struct{ base, variant int64 }
	sums, err := parMap(len(benches), Workers(), func(i int) (attempts, error) {
		var a attempts
		for j := range benches[i].Loops {
			spec := &benches[i].Loops[j]
			eb, err := EvalLoop(spec, base)
			if err != nil {
				return a, err
			}
			ev, err := EvalLoop(spec, variant)
			if err != nil {
				return a, err
			}
			a.base += int64(eb.Attempts)
			a.variant += int64(ev.Attempts)
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	for _, a := range sums {
		res.BaseAttempts += a.base
		res.VariantAttempts += a.variant
	}
	if res.BaseAttempts > 0 {
		res.AttemptIncreasePct = (float64(res.VariantAttempts)/float64(res.BaseAttempts) - 1) * 100
		res.EstCompileTimeIncreasePct = res.AttemptIncreasePct * pipelinerCompileShare
	}
	return res, nil
}
