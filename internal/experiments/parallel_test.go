package experiments

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"ltsp/internal/hlo"
	"ltsp/internal/workload"
)

// TestEvalSuiteParallelDeterminism pins the fleet-driver guarantee: the
// suite result is identical at any worker-pool width, because benchmarks
// are independent and accumulation happens in suite order.
func TestEvalSuiteParallelDeterminism(t *testing.T) {
	benches := workload.CPU2006()[:4]
	base := Baseline(true)
	variants := []Config{WithHints(hlo.ModeHLO, true, 32)}

	run := func(w int) *SuiteResult {
		t.Helper()
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		res, err := EvalSuite(benches, base, variants)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	sj, _ := json.Marshal(seq)
	pj, _ := json.Marshal(par)
	if string(sj) != string(pj) {
		t.Fatalf("suite results differ between workers=1 and workers=4:\n%s\n%s", sj, pj)
	}
	if !reflect.DeepEqual(seq.Gains, par.Gains) || !reflect.DeepEqual(seq.Geomean, par.Geomean) {
		t.Fatal("gains differ between worker widths")
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(7)
	defer SetWorkers(prev)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	if SetWorkers(0); Workers() != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", Workers())
	}
}

// TestParMapOrderAndErrors checks index-ordered results and the
// lowest-index error rule at several widths.
func TestParMapOrderAndErrors(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		got, err := parMap(10, w, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: out[%d] = %d", w, i, v)
			}
		}
		boom3, boom7 := errors.New("i=3"), errors.New("i=7")
		_, err = parMap(10, w, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		})
		if err != boom3 {
			t.Fatalf("width %d: err = %v, want lowest-index error %v", w, err, boom3)
		}
	}
}
