package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/obs"
	"ltsp/internal/profile"
	"ltsp/internal/sched"
	"ltsp/internal/workload"

	_ "ltsp/internal/sched/exact" // register the oracle backend
)

// OracleGapLoop is one loop's optimality-gap measurement: the production
// heuristic's achieved II and max register lifetime against the exact
// branch-and-bound solver's, under the paper's main configuration
// (HLO-directed hints, latency-tolerant).
type OracleGapLoop struct {
	Bench, Loop string
	// Body is the loop body size in instructions (after HLO).
	Body int
	// Sequential marks loops the pipeliner rejected; no gap exists.
	Sequential bool
	// Skipped marks pipelined loops beyond the exact probe's size budget.
	Skipped bool
	// HeurII / ExactII are the heuristic's achieved II and the best II
	// the exact probe established (equal when the heuristic is optimal
	// or the probe gave up; Proven distinguishes the two).
	HeurII, ExactII int
	// Proven reports ExactII is provably the optimal II.
	Proven bool
	// HeurLife / ExactLife are the maximum register lifetimes (the
	// rotating-register pressure proxy); ExactLife is -1 when the exact
	// solver never produced a schedule for this loop.
	HeurLife, ExactLife int
}

// OracleGapResult aggregates the optimality-gap sweep per benchmark.
type OracleGapResult struct {
	Loops []OracleGapLoop
	// Measured counts pipelined loops the probe decided; Proven those
	// with a proven-optimal ExactII; WithGap those where the heuristic's
	// II exceeds a proven-better exact II.
	Measured, Proven, WithGap, Skipped, Sequential int
	// IIGapPct is sum(HeurII)/sum(ExactII)-1 over measured loops, in
	// percent — the aggregate II the heuristic leaves on the table.
	IIGapPct float64
	// LifeGapPct is the same aggregate over max register lifetimes,
	// restricted to loops where the exact solver produced a schedule.
	LifeGapPct float64
}

// oracleGapTimeout bounds each loop's compile+probe; the exact solver's
// node budget usually triggers first, but a wall-clock ceiling keeps the
// sweep's worst case bounded on slow machines.
const oracleGapTimeout = 10 * time.Second

// evalOracleGap compiles one loop with the oracle backend and extracts
// the gap event. A nil result means the loop was not pipelined.
func evalOracleGap(spec *workload.LoopSpec, bench string) (*OracleGapLoop, error) {
	cfg := WithHints(hlo.ModeHLO, false, 0)
	est := profile.Static(spec.Facts)
	model := cfg.model()

	l := spec.Gen()
	if err := l.Verify(); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	hloOpts := hlo.Options{Model: model, Mode: cfg.Mode, Prefetch: cfg.Prefetch}
	if est.Known {
		hloOpts.TripEstimate = est.Avg
	}
	if _, err := hlo.Apply(l, hloOpts); err != nil {
		return nil, fmt.Errorf("%s: hlo: %w", spec.Name, err)
	}

	row := &OracleGapLoop{Bench: bench, Loop: spec.Name, Body: len(l.Body)}
	ctx, cancel := context.WithTimeout(context.Background(), oracleGapTimeout)
	defer cancel()
	tr := obs.New()
	c, err := core.PipelineCtx(ctx, l, core.Options{
		Model:           model,
		LatencyTolerant: cfg.LatencyTolerant,
		BoostDelinquent: cfg.LatencyTolerant,
		Backend:         sched.BackendOracle,
		Trace:           tr,
	})
	if err != nil {
		// Not pipelinable under this configuration — no gap to measure.
		row.Sequential = true
		return row, nil
	}
	row.HeurII = c.FinalII
	row.ExactII = c.FinalII
	row.ExactLife = -1
	for _, e := range tr.Events() {
		if g, ok := e.(obs.OracleGapEvent); ok {
			row.HeurII, row.ExactII = g.HeurII, g.ExactII
			row.Proven = g.Proven
			row.HeurLife, row.ExactLife = g.HeurLife, g.ExactLife
		}
	}
	// The probe reports over-budget implicitly: no proof, exact equal to
	// the heuristic, and no exact schedule.
	if !row.Proven && row.ExactII == row.HeurII && row.ExactLife < 0 {
		row.Skipped = true
	}
	return row, nil
}

// RunOracleGap sweeps every workload loop, compiling each with the
// oracle backend (heuristic result, exact-solver probe) and aggregating
// the heuristic's optimality gap per benchmark.
func RunOracleGap() (*OracleGapResult, error) {
	benches := workload.All()
	rows, err := parMap(len(benches), Workers(), func(i int) ([]OracleGapLoop, error) {
		var out []OracleGapLoop
		for j := range benches[i].Loops {
			r, err := evalOracleGap(&benches[i].Loops[j], benches[i].Name)
			if err != nil {
				return nil, err
			}
			out = append(out, *r)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &OracleGapResult{}
	for _, rs := range rows {
		res.Loops = append(res.Loops, rs...)
	}
	var sumHeurII, sumExactII, sumHeurLife, sumExactLife int
	for _, r := range res.Loops {
		switch {
		case r.Sequential:
			res.Sequential++
		case r.Skipped:
			res.Skipped++
		default:
			res.Measured++
			sumHeurII += r.HeurII
			sumExactII += r.ExactII
			if r.Proven {
				res.Proven++
			}
			if r.ExactII < r.HeurII {
				res.WithGap++
			}
			if r.ExactLife >= 0 {
				sumHeurLife += r.HeurLife
				sumExactLife += r.ExactLife
			}
		}
	}
	if sumExactII > 0 {
		res.IIGapPct = (float64(sumHeurII)/float64(sumExactII) - 1) * 100
	}
	if sumExactLife > 0 {
		res.LifeGapPct = (float64(sumHeurLife)/float64(sumExactLife) - 1) * 100
	}
	return res, nil
}

// benchGap is one benchmark's aggregated row of the gap table.
type benchGap struct {
	loops, proven, skipped, seq    int
	heurII, exactII, heurL, exactL int
}

// String renders the per-benchmark oracle-gap table.
func (r *OracleGapResult) String() string {
	perBench := map[string]*benchGap{}
	var order []string
	for _, row := range r.Loops {
		g := perBench[row.Bench]
		if g == nil {
			g = &benchGap{}
			perBench[row.Bench] = g
			order = append(order, row.Bench)
		}
		switch {
		case row.Sequential:
			g.seq++
		case row.Skipped:
			g.skipped++
		default:
			g.loops++
			g.heurII += row.HeurII
			g.exactII += row.ExactII
			if row.Proven {
				g.proven++
			}
			if row.ExactLife >= 0 {
				g.heurL += row.HeurLife
				g.exactL += row.ExactLife
			}
		}
	}
	pct := func(a, b int) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", (float64(a)/float64(b)-1)*100)
	}
	var b strings.Builder
	b.WriteString("Oracle gap — heuristic vs exact branch-and-bound (HLO hints, latency-tolerant)\n\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s %8s %10s %10s\n",
		"benchmark", "loops", "proven", "skipped", "ΣII", "ΣII*", "II gap", "life gap")
	for _, name := range order {
		g := perBench[name]
		fmt.Fprintf(&b, "%-18s %8d %8d %8d %8d %8d %10s %10s\n",
			name, g.loops, g.proven, g.skipped, g.heurII, g.exactII,
			pct(g.heurII, g.exactII), pct(g.heurL, g.exactL))
	}
	fmt.Fprintf(&b, "\nmeasured %d pipelined loops (%d proven-optimal II, %d with a proven gap), "+
		"%d over budget, %d sequential\n",
		r.Measured, r.Proven, r.WithGap, r.Skipped, r.Sequential)
	fmt.Fprintf(&b, "aggregate II gap %+.2f%%, max-lifetime gap %+.2f%%\n", r.IIGapPct, r.LifeGapPct)
	return b.String()
}
