package experiments

import (
	"strings"
	"testing"

	"ltsp/internal/workload"
)

// TestOracleGapSampled probes a handful of benchmarks — the CI smoke
// slice of the full RunOracleGap sweep. The heuristic must never beat a
// proven-optimal exact II, and proven loops must have ExactII ≤ HeurII.
func TestOracleGapSampled(t *testing.T) {
	for _, name := range []string{"429.mcf", "181.mcf", "470.lbm"} {
		b := workload.ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s missing from workload", name)
		}
		for j := range b.Loops {
			spec := &b.Loops[j]
			row, err := evalOracleGap(spec, b.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, spec.Name, err)
			}
			if row.Sequential {
				continue
			}
			if row.ExactII > row.HeurII {
				t.Errorf("%s/%s: exact II %d exceeds heuristic II %d — the heuristic schedule witnesses feasibility at its own II",
					name, spec.Name, row.ExactII, row.HeurII)
			}
			if row.Skipped && row.Proven {
				t.Errorf("%s/%s: over-budget probe must not claim a proof", name, spec.Name)
			}
			if !row.Skipped && row.ExactLife >= 0 && row.HeurII == row.ExactII && row.ExactLife > row.HeurLife {
				t.Errorf("%s/%s: exact max lifetime %d worse than heuristic %d at the same II — SolveMin must minimize lifetime",
					name, spec.Name, row.ExactLife, row.HeurLife)
			}
		}
	}
}

// TestOracleGapTableRenders checks the table renderer aggregates rows
// per benchmark without running the full sweep.
func TestOracleGapTableRenders(t *testing.T) {
	r := &OracleGapResult{
		Loops: []OracleGapLoop{
			{Bench: "429.mcf", Loop: "a", HeurII: 4, ExactII: 3, Proven: true, HeurLife: 8, ExactLife: 6},
			{Bench: "429.mcf", Loop: "b", Sequential: true},
			{Bench: "470.lbm", Loop: "c", HeurII: 2, ExactII: 2, Skipped: true, ExactLife: -1},
		},
		Measured: 1, Proven: 1, WithGap: 1, Skipped: 1, Sequential: 1,
		IIGapPct: 33.3, LifeGapPct: 33.3,
	}
	out := r.String()
	for _, want := range []string{"429.mcf", "470.lbm", "+33.3%", "1 over budget", "1 sequential"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
