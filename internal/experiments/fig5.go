package experiments

import (
	"fmt"

	"ltsp/internal/core"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/sim"
)

// Fig5Point is one point of the stall-reduction law (paper Equ. 2):
// reduction = 100 * (1 - (1-c)/k) for coverage ratio c and clustering
// factor k.
type Fig5Point struct {
	K         int
	C         float64
	Reduction float64
}

// AnalyticFig5 evaluates Equ. 2 over the paper's grid: k = 1..8 and
// c in {1, 0.5, 0.1, 0.01}.
func AnalyticFig5() []Fig5Point {
	var out []Fig5Point
	for _, c := range []float64{1, 0.5, 0.1, 0.01} {
		for k := 1; k <= 8; k++ {
			out = append(out, Fig5Point{K: k, C: c, Reduction: 100 * (1 - (1-c)/float64(k))})
		}
	}
	return out
}

// Fig5Validation is one simulated validation point: a single-load loop is
// scheduled with additional latency d = (k-1)*II, every load misses to a
// fixed hierarchy level, and the measured stall reduction is compared with
// the analytic prediction computed from the *measured* baseline stall.
type Fig5Validation struct {
	Level     string
	K, D      int
	MeasuredL float64 // baseline stall per iteration (the exposed latency L)
	Measured  float64 // measured stall reduction, percent
	Predicted float64 // Equ. 2 with c = d/L, percent
}

// fig5Loop builds the single-load validation loop: a strided load (one
// access per cache line) feeding a store into a small, cache-hot region.
func fig5Loop(stride int64) *ir.Loop {
	l := ir.NewLoop("fig5")
	b, c, v := l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 4, stride)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideConst, stride
	l.Append(ld)
	st := ir.St(c, v, 4, 0) // fixed cell: stays cache-hot
	l.Append(st)
	l.Init(b, 0x0100_0000)
	l.Init(c, 0x0900_0000)
	return l
}

// RunFig5Validation sweeps clustering factors over three miss levels
// (memory, L3, L2) and returns measured-vs-predicted stall reductions.
func RunFig5Validation() ([]Fig5Validation, error) {
	type level struct {
		name  string
		lines int64 // working-set size in 128-byte lines
		cold  bool  // drop caches before each measured run
	}
	levels := []level{
		{"memory", 1 << 14, true}, // 2 MB streamed cold: always misses to memory
		{"L3", 1 << 14, false},    // 2 MB warmed: L2-evicted, L3-resident
		{"L2", 1 << 10, false},    // 128 KB warmed: mostly L2-resident
	}
	const stride = 128
	var out []Fig5Validation
	for _, lv := range levels {
		trip := lv.lines - 8
		baseEXE, baseII, err := fig5Measure(0, trip, lv.cold)
		if err != nil {
			return nil, err
		}
		l := baseEXE / float64(trip)
		if l <= 0 {
			return nil, fmt.Errorf("fig5: level %s shows no baseline stall", lv.name)
		}
		for _, k := range []int{2, 3, 4, 6, 8} {
			d := (k - 1) * baseII
			exe, _, err := fig5Measure(d, trip, lv.cold)
			if err != nil {
				return nil, err
			}
			c := float64(d) / l
			if c > 1 {
				c = 1
			}
			out = append(out, Fig5Validation{
				Level:     lv.name,
				K:         k,
				D:         d,
				MeasuredL: l,
				Measured:  100 * (1 - exe/baseEXE),
				Predicted: 100 * (1 - (1-c)/float64(k)),
			})
		}
	}
	return out, nil
}

// fig5Measure compiles the validation loop with the given additional
// scheduled latency d (0 = baseline) and returns the steady-state EXE
// stall cycles for one execution plus the achieved II.
func fig5Measure(d int, trip int64, cold bool) (float64, int, error) {
	l := fig5Loop(128)
	opts := core.Options{}
	if d > 0 {
		opts.LatencyTolerant = true
		opts.ForceLoadLatency = d + 1 // base integer load latency is 1
	}
	c, err := core.Pipeline(l, opts)
	if err != nil {
		return 0, 0, err
	}
	runner := sim.NewRunner(sim.DefaultConfig())
	mem := interp.NewMemory()
	if !cold {
		// Warm the working set once so the measured run hits the intended
		// level.
		if _, err := runner.Run(c.Program, trip, mem); err != nil {
			return 0, 0, err
		}
	}
	r, err := runner.Run(c.Program, trip, mem)
	if err != nil {
		return 0, 0, err
	}
	return float64(r.Acct.ExeBubble), c.FinalII, nil
}
