package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerWidth is the worker-pool width the suite drivers use for
// independent benchmark evaluations. Benchmarks are fully independent
// (fixed-seed generators, private simulators), so evaluating them
// concurrently and accumulating in index order is bit-identical to the
// sequential drivers.
var workerWidth atomic.Int64

func init() { workerWidth.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers returns the current evaluation worker-pool width.
func Workers() int { return int(workerWidth.Load()) }

// SetWorkers sets the worker-pool width for subsequent driver calls
// (values < 1 are clamped to 1, which selects fully sequential
// evaluation) and returns the previous setting.
func SetWorkers(w int) int {
	if w < 1 {
		w = 1
	}
	return int(workerWidth.Swap(int64(w)))
}

// parMap evaluates fn(0..n-1) on a bounded worker pool and returns the
// results in index order. On failure it returns the lowest-index error —
// the one the sequential loop would have hit first. width <= 1 runs
// inline.
func parMap[T any](n, width int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
