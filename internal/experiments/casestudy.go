package experiments

import (
	"fmt"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/obs"
	"ltsp/internal/sim"
	"ltsp/internal/workload"
)

// CaseStudyResult reproduces the paper's Sec. 4.4: the refresh_potential()
// loop of 429.mcf. The delinquent indirect loads cannot be prefetched
// (pointer-chasing recurrence), are marked by HLO heuristic (1), and get
// clustered in the pipelined schedule; despite an average trip count of
// only 2.3 the loop speeds up substantially (paper: k = 2, 40%).
type CaseStudyResult struct {
	// AvgTrip is the loop's average reference trip count.
	AvgTrip float64
	// DelinquentLoads lists the loads HLO marked by heuristic (1).
	DelinquentLoads []string
	// CriticalLoads lists the loads the pipeliner classified critical
	// (boosting them would stretch a recurrence past the II floor), as
	// recorded in the compile decision trace.
	CriticalLoads []string
	// ClusterK is the realized clustering factor per delinquent load.
	ClusterK map[string]int
	// II / Stages of the latency-tolerant kernel; Outcome is the
	// pipeliner's result class from the decision trace.
	II, Stages int
	Outcome    string
	// SpeedupPct is the loop-level speedup of HLO hints over baseline
	// (paper: 40%).
	SpeedupPct float64
	// WhileSpeedupPct is the same measurement on the faithful
	// data-terminated form of the loop (while (node), pipelined with
	// br.wtop on a software validity chain).
	WhileSpeedupPct float64
	// PaperK and PaperSpeedupPct are the paper's values.
	PaperK          int
	PaperSpeedupPct float64
}

// RunCaseStudy executes the Sec. 4.4 reproduction.
func RunCaseStudy() (*CaseStudyResult, error) {
	b := workload.ByName("429.mcf")
	if b == nil {
		return nil, fmt.Errorf("casestudy: no 429.mcf model")
	}
	var spec *workload.LoopSpec
	for i := range b.Loops {
		if b.Loops[i].Name == "refresh_potential" {
			spec = &b.Loops[i]
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("casestudy: no refresh_potential loop")
	}

	res := &CaseStudyResult{
		AvgTrip:         spec.Ref.Avg(),
		ClusterK:        map[string]int{},
		PaperK:          2,
		PaperSpeedupPct: 40,
	}

	// Inspect the compiled kernel under HLO hints.
	l := spec.Gen()
	rep, err := hlo.Apply(l, hlo.Options{Mode: hlo.ModeHLO, Prefetch: true, TripEstimate: res.AvgTrip})
	if err != nil {
		return nil, err
	}
	delinquent := map[string]bool{}
	for _, r := range rep.Refs {
		if r.Heuristic == hlo.HNotPrefetchable && l.Body[r.ID].Op.IsLoad() {
			label := loadLabel(l.Body[r.ID])
			res.DelinquentLoads = append(res.DelinquentLoads, label)
			delinquent[label] = true
		}
	}
	// The classification and clustering facts come straight from the
	// compile decision trace rather than being re-derived from the kernel.
	tr := obs.New()
	c, err := core.Pipeline(l, core.Options{BoostDelinquent: true, Trace: tr})
	if err != nil {
		return nil, err
	}
	res.II, res.Stages = c.FinalII, c.Stages
	for _, e := range tr.Events() {
		switch ev := e.(type) {
		case obs.LoadClassEvent:
			if ev.Critical {
				res.CriticalLoads = append(res.CriticalLoads, ev.Name)
			}
		case obs.LoadSchedEvent:
			if delinquent[ev.Name] && !ev.Critical {
				res.ClusterK[ev.Name] = ev.ClusterK
			}
		case obs.OutcomeEvent:
			res.Outcome = ev.Result
		}
	}

	// Loop-level speedup over the reference distribution.
	base, err := EvalLoop(spec, Baseline(true))
	if err != nil {
		return nil, err
	}
	variant, err := EvalLoop(spec, WithHints(hlo.ModeHLO, true, 32))
	if err != nil {
		return nil, err
	}
	if variant.Cycles > 0 {
		res.SpeedupPct = (base.Cycles/variant.Cycles - 1) * 100
	}

	// The data-terminated (br.wtop) form: chains of the same average
	// length traversed to their NULL terminator.
	whileSpeedup, err := measureWhileForm()
	if err != nil {
		return nil, err
	}
	res.WhileSpeedupPct = whileSpeedup
	return res, nil
}

// measureWhileForm compiles and simulates the while-loop form of
// refresh_potential under the baseline and HLO configurations, over the
// paper's 2.3-average trip mix, cold caches.
func measureWhileForm() (float64, error) {
	run := func(mode hlo.HintMode, tolerant bool) (float64, error) {
		gen, _ := workload.WhileChase(1<<15, 3, 7)
		l := gen()
		if _, err := hlo.Apply(l, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
			return 0, err
		}
		c, err := core.Pipeline(l, core.Options{LatencyTolerant: tolerant, BoostDelinquent: tolerant})
		if err != nil {
			return 0, err
		}
		runner := sim.NewRunner(sim.DefaultConfig())
		var total float64
		// Chain lengths 2 and 3 in a 7:3 mix (average 2.3), fresh cold
		// caches per execution.
		for i, chain := range []int64{2, 2, 2, 2, 2, 2, 2, 3, 3, 3} {
			genC, initC := workload.WhileChase(1<<15, chain, int64(40+i))
			_ = genC // same loop shape; only the data differs
			mem := interp.NewMemory()
			initC(mem)
			runner.DropCaches()
			r, err := runner.Run(c.Program, 64, mem)
			if err != nil {
				return 0, err
			}
			total += float64(r.Cycles)
		}
		return total, nil
	}
	base, err := run(hlo.ModeNone, false)
	if err != nil {
		return 0, err
	}
	boosted, err := run(hlo.ModeHLO, true)
	if err != nil {
		return 0, err
	}
	if boosted <= 0 {
		return 0, nil
	}
	return (base/boosted - 1) * 100, nil
}

func loadLabel(in *ir.Instr) string {
	if in.Comment != "" {
		return in.Comment
	}
	return fmt.Sprintf("body[%d]", in.ID)
}
