package experiments

import (
	"ltsp/internal/hlo"
	"ltsp/internal/workload"
)

// Fig10Result reproduces the paper's cycle-accounting comparison over
// CPU2006 (HLO hints vs baseline, no PGO): total cycles decomposed into
// the six microarchitectural states, plus the percentage change of each
// component.
type Fig10Result struct {
	Baseline, Variant AcctF
	// Changes are percentage changes variant-vs-baseline per component.
	ExeChange, L1DFPUChange, RSEChange, UnstalledChange, TotalChange float64
	// OzQ full-state share of total cycles (paper: 8.2% -> 9.4%).
	OzQShareBase, OzQShareVar float64
	// Paper's reported changes for side-by-side reporting.
	PaperExeChange, PaperL1DFPUChange, PaperRSEChange, PaperUnstalledChange float64
}

// RunFig10 aggregates simulator cycle accounting over CPU2006 under the
// baseline and the HLO-hints configuration (both without PGO, exactly the
// last experiment of Fig. 9).
func RunFig10() (*Fig10Result, error) {
	base := Baseline(false)
	variant := WithHints(hlo.ModeHLO, false, 32)
	res := &Fig10Result{
		PaperExeChange:       -12,
		PaperL1DFPUChange:    8,
		PaperRSEChange:       14,
		PaperUnstalledChange: 1.2,
	}
	for _, b := range workload.CPU2006() {
		r, err := EvalBenchmark(b, base, variant)
		if err != nil {
			return nil, err
		}
		res.Baseline.addF(r.BaseAcct, 1)
		res.Variant.addF(r.VarAcct, 1)
	}
	pct := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (b/a - 1) * 100
	}
	res.ExeChange = pct(res.Baseline.Exe, res.Variant.Exe)
	res.L1DFPUChange = pct(res.Baseline.L1DFPU, res.Variant.L1DFPU)
	res.RSEChange = pct(res.Baseline.RSE, res.Variant.RSE)
	res.UnstalledChange = pct(res.Baseline.Unstalled, res.Variant.Unstalled)
	res.TotalChange = pct(res.Baseline.Total, res.Variant.Total)
	if res.Baseline.Total > 0 {
		res.OzQShareBase = 100 * res.Baseline.L1DFPU / res.Baseline.Total
	}
	if res.Variant.Total > 0 {
		res.OzQShareVar = 100 * res.Variant.L1DFPU / res.Variant.Total
	}
	return res, nil
}
