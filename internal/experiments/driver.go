// Package experiments reproduces the paper's evaluation: one driver per
// figure/table (Fig. 5, 7, 8, 9, 10, the Sec. 4.4 mcf case study, the
// Sec. 4.5 register statistics and the Sec. 3.3 compile-time cost),
// built on a shared compile-and-simulate pipeline over the synthetic SPEC
// benchmark models of package workload.
package experiments

import (
	"fmt"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/profile"
	"ltsp/internal/regalloc"
	"ltsp/internal/sim"
	"ltsp/internal/stats"
	"ltsp/internal/workload"
)

// Config is one compiler configuration of the paper's experiments.
type Config struct {
	// Name labels the configuration in tables.
	Name string
	// Mode is the hint policy (baseline, all-L3, all-FP-L2, HLO).
	Mode hlo.HintMode
	// Prefetch enables the software prefetcher (on in all of the paper's
	// configurations except one headroom variant).
	Prefetch bool
	// PGO selects dynamic (training-input) trip-count profiles; without it
	// the static heuristic estimates are used.
	PGO bool
	// LatencyTolerant enables the optimization; false is the paper's
	// baseline compiler, which applies no non-critical latency increases.
	LatencyTolerant bool
	// TripThreshold is the paper's n: longer latencies are applied only in
	// loops whose estimated average trip count is at least n. Zero means
	// no threshold.
	TripThreshold float64
	// PipelineGate is the minimum estimated trip count for software
	// pipelining to be considered profitable at all.
	PipelineGate float64
	// RSEPerReg scales the synthesized register-stack-engine cost per loop
	// execution: RSE cycles = RSEPerReg * allocated general registers.
	RSEPerReg float64
	// OzQCapacity overrides the machine's out-of-order memory queue depth
	// (0 = the architectural 48). Used by the ablation experiments.
	OzQCapacity int
	// RotGR / RotFR override the rotating register region sizes (0 = the
	// architectural 96). Used by the ablation experiments.
	RotGR, RotFR int
	// Versioned enables trip-count versioning (the paper's Sec. 6
	// outlook): both a latency-tolerant and a conservative kernel are
	// compiled, and each execution dispatches on its *actual* trip count
	// against TripThreshold — removing the compile-time estimate from the
	// cost equation entirely.
	Versioned bool
	// HintSampling enables dynamic cache-miss sampling (the other Sec. 6
	// outlook item): a baseline-compiled sampling run over the *training*
	// distribution records each load site's service levels, and hints are
	// derived from the observed latencies instead of the static
	// prefetch-efficiency heuristics.
	HintSampling bool
}

// model materializes the (possibly overridden) machine model.
func (c Config) model() *machine.Model {
	m := machine.Itanium2()
	if c.OzQCapacity > 0 {
		m.OzQCapacity = c.OzQCapacity
	}
	if c.RotGR > 0 {
		m.RotGR = c.RotGR
	}
	if c.RotFR > 0 {
		m.RotFR = c.RotFR
	}
	return m
}

// Baseline returns the paper's baseline compiler configuration.
func Baseline(pgo bool) Config {
	return Config{
		Name:         "baseline",
		Mode:         hlo.ModeNone,
		Prefetch:     true,
		PGO:          pgo,
		PipelineGate: 2,
		RSEPerReg:    0.5,
	}
}

// WithHints returns a latency-tolerant configuration with the given hint
// mode and trip-count threshold.
func WithHints(mode hlo.HintMode, pgo bool, threshold float64) Config {
	c := Baseline(pgo)
	c.Name = mode.String()
	if threshold > 0 {
		c.Name = fmt.Sprintf("%s,n=%g", mode.String(), threshold)
	}
	c.Mode = mode
	c.LatencyTolerant = true
	c.TripThreshold = threshold
	return c
}

// LoopEval is the outcome of compiling and simulating one loop under one
// configuration, aggregated over its reference trip-count distribution.
type LoopEval struct {
	Name string
	// Cycles is the distribution-weighted total cycle count.
	Cycles float64
	// Acct is the distribution-weighted cycle accounting.
	Acct AcctF
	// Pipelined reports whether the loop was software-pipelined.
	Pipelined bool
	// II and Stages describe the kernel (pipelined only).
	II, Stages int
	// Reg is the register allocation footprint (pipelined only).
	Reg regalloc.Stats
	// Attempts counts modulo-scheduler placements (compile-time proxy).
	Attempts int
	// Boosted counts loads scheduled above base latency.
	Boosted int
	// LatencyReduced records that the pipeliner's fallback ladder dropped
	// the boosted latencies to satisfy register allocation.
	LatencyReduced bool
	// Estimate is the trip-count estimate the compiler used.
	Estimate profile.Estimate
}

// AcctF is sim.Accounting in float64, for weighted aggregation.
type AcctF struct {
	Total, Unstalled, Exe, L1DFPU, RSE, Flush, FE float64
}

// add accumulates a scaled accounting.
func (a *AcctF) add(b sim.Accounting, scale float64) {
	a.Total += float64(b.Total) * scale
	a.Unstalled += float64(b.Unstalled) * scale
	a.Exe += float64(b.ExeBubble) * scale
	a.L1DFPU += float64(b.L1DFPUBubble) * scale
	a.RSE += float64(b.RSEBubble) * scale
	a.Flush += float64(b.FlushBubble) * scale
	a.FE += float64(b.FEBubble) * scale
}

// addF accumulates another AcctF scaled.
func (a *AcctF) addF(b AcctF, scale float64) {
	a.Total += b.Total * scale
	a.Unstalled += b.Unstalled * scale
	a.Exe += b.Exe * scale
	a.L1DFPU += b.L1DFPU * scale
	a.RSE += b.RSE * scale
	a.Flush += b.Flush * scale
	a.FE += b.FE * scale
}

// warmRunsPerSample bounds how many executions of one (trip, count) sample
// are actually simulated; the remainder are extrapolated from the warm
// runs.
const warmRunsPerSample = 3

// EvalLoop compiles the loop under cfg and simulates it over its reference
// trip-count distribution.
func EvalLoop(spec *workload.LoopSpec, cfg Config) (*LoopEval, error) {
	var est profile.Estimate
	if cfg.PGO {
		est = profile.PGO(spec.Train)
	} else {
		est = profile.Static(spec.Facts)
	}
	model := cfg.model()

	var hints map[int]sampledHint
	if cfg.HintSampling {
		h, err := sampleLoopHints(spec, cfg, est)
		if err != nil {
			return nil, err
		}
		hints = h
	}

	ev := &LoopEval{Name: spec.Name, Estimate: est}
	simCfg := sim.DefaultConfig()
	simCfg.Model = model

	// compileOne builds and compiles a fresh copy of the loop; tolerant
	// selects the latency policy. The first (primary) compilation fills
	// the evaluation metadata.
	compileOne := func(tolerant, primary bool) (*interp.Program, error) {
		l := spec.Gen()
		if err := l.Verify(); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		hloOpts := hlo.Options{Model: model, Mode: cfg.Mode, Prefetch: cfg.Prefetch}
		if hints != nil {
			hloOpts.Mode = hlo.ModeNone // sampled hints replace the heuristics
		}
		if est.Known {
			hloOpts.TripEstimate = est.Avg
		}
		if _, err := hlo.Apply(l, hloOpts); err != nil {
			return nil, fmt.Errorf("%s: hlo: %w", spec.Name, err)
		}
		for _, in := range l.Body {
			if h, ok := hints[in.ID]; ok && in.Op.IsLoad() {
				in.Mem.Hint = h.hint
				in.Mem.Delinquent = h.delinquent
			}
		}
		if est.Avg >= cfg.PipelineGate {
			c, err := core.Pipeline(l, core.Options{
				Model:           model,
				LatencyTolerant: tolerant,
				BoostDelinquent: cfg.LatencyTolerant,
			})
			if err == nil {
				if primary {
					ev.Pipelined = true
					ev.II, ev.Stages = c.FinalII, c.Stages
					ev.Reg = c.Assignment.Stats
					ev.Attempts = c.Attempts
					ev.LatencyReduced = c.LatencyReduced
					for _, lr := range c.Loads {
						if lr.SchedLat > lr.BaseLat {
							ev.Boosted++
						}
					}
					simCfg.RSECyclesPerExec = int64(cfg.RSEPerReg * float64(ev.Reg.TotalGR()))
				}
				return c.Program, nil
			}
		}
		p, err := core.GenSequential(model, l)
		if err != nil {
			return nil, fmt.Errorf("%s: seq: %w", spec.Name, err)
		}
		return p, nil
	}

	tolerant := cfg.LatencyTolerant && (cfg.Versioned || est.Avg >= cfg.TripThreshold)
	prog, err := compileOne(tolerant, true)
	if err != nil {
		return nil, err
	}
	// Trip-count versioning: a second, conservative kernel for short
	// executions, dispatched on the actual trip count.
	var progShort *interp.Program
	versionGate := cfg.TripThreshold
	if versionGate <= 0 {
		versionGate = 32
	}
	if cfg.Versioned && cfg.LatencyTolerant {
		p, err := compileOne(false, false)
		if err != nil {
			return nil, err
		}
		progShort = p
	}
	pick := func(trip int64) *interp.Program {
		if progShort != nil && float64(trip) < versionGate {
			return progShort
		}
		return prog
	}

	runner := sim.NewRunner(simCfg)
	mem := interp.NewMemory()
	spec.InitMem(mem)
	if !spec.Cold && len(spec.Ref) > 0 {
		// Warm-up execution (not measured): steady-state measurement of a
		// cache-hot loop must not be polluted by the one-time cold start.
		if _, err := runner.Run(pick(spec.Ref[0].Trip), spec.Ref[0].Trip, mem); err != nil {
			return nil, fmt.Errorf("%s: warmup: %w", spec.Name, err)
		}
	}
	for _, s := range spec.Ref {
		if s.Count <= 0 || s.Trip < 1 {
			continue
		}
		n := int64(warmRunsPerSample)
		if s.Count < n {
			n = s.Count
		}
		var acct sim.Accounting
		var runs int64
		for i := int64(0); i < n; i++ {
			if spec.Cold {
				runner.DropCaches()
			}
			r, err := runner.Run(pick(s.Trip), s.Trip, mem)
			if err != nil {
				return nil, fmt.Errorf("%s: sim: %w", spec.Name, err)
			}
			acct.Add(r.Acct)
			runs++
		}
		ev.Acct.add(acct, float64(s.Count)/float64(runs))
	}
	ev.Cycles = ev.Acct.Total
	return ev, nil
}

// sampledHint is a hint derived from observed load-site latencies.
type sampledHint struct {
	hint       ir.Hint
	delinquent bool
}

// sampleLoopHints performs the dynamic cache-miss sampling run: the loop
// is compiled by the baseline compiler and executed over the *training*
// distribution; each load site's average service latency then determines
// its hint token (and the delinquent flag for memory-latency sites).
func sampleLoopHints(spec *workload.LoopSpec, cfg Config, est profile.Estimate) (map[int]sampledHint, error) {
	model := cfg.model()
	l := spec.Gen()
	origLen := len(l.Body) // HLO-inserted prefetch sequences are not user loads
	hloOpts := hlo.Options{Model: model, Mode: hlo.ModeNone, Prefetch: cfg.Prefetch}
	if est.Known {
		hloOpts.TripEstimate = est.Avg
	}
	if _, err := hlo.Apply(l, hloOpts); err != nil {
		return nil, fmt.Errorf("%s: sampling hlo: %w", spec.Name, err)
	}
	var prog *interp.Program
	if est.Avg >= cfg.PipelineGate {
		if c, err := core.Pipeline(l, core.Options{Model: model}); err == nil {
			prog = c.Program
		}
	}
	if prog == nil {
		p, err := core.GenSequential(model, l)
		if err != nil {
			return nil, fmt.Errorf("%s: sampling seq: %w", spec.Name, err)
		}
		prog = p
	}
	simCfg := sim.DefaultConfig()
	simCfg.Model = model
	runner := sim.NewRunner(simCfg)
	mem := interp.NewMemory()
	spec.InitMem(mem)
	totals := map[int]*[5]int64{}
	latency := map[int]int64{}
	if !spec.Cold && len(spec.Train) > 0 {
		// Warm to steady state first: production sampling is dominated by
		// the steady-state executions, not the process cold start.
		for w := 0; w < 8; w++ {
			if _, err := runner.Run(prog, spec.Train[w%len(spec.Train)].Trip, mem); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range spec.Train {
		if s.Count <= 0 || s.Trip < 1 {
			continue
		}
		for i := int64(0); i < 3 && i < s.Count; i++ {
			if spec.Cold {
				runner.DropCaches()
			}
			r, err := runner.Run(prog, s.Trip, mem)
			if err != nil {
				return nil, fmt.Errorf("%s: sampling: %w", spec.Name, err)
			}
			for id, levels := range r.LoadSiteLevels {
				t := totals[id]
				if t == nil {
					t = new([5]int64)
					totals[id] = t
				}
				for lv := range levels {
					t[lv] += levels[lv]
				}
			}
			for id, lat := range r.LoadSiteLatency {
				latency[id] += lat
			}
		}
	}

	out := map[int]sampledHint{}
	for id, levels := range totals {
		if id >= origLen || !l.Body[id].Op.IsLoad() {
			continue // prefetch-sequence loads added by HLO
		}
		var n float64
		for lv := 1; lv < 5; lv++ {
			n += float64(levels[lv])
		}
		if n == 0 {
			continue
		}
		// Average observed issue-to-data latency, including waits on
		// in-flight (prefetched) lines — what HP Caliper-style sampling
		// would report.
		avg := float64(latency[id]) / n
		var h sampledHint
		switch {
		case avg > 40:
			h = sampledHint{hint: ir.HintL3, delinquent: true}
		case avg > float64(model.Lat.L2Typ):
			h = sampledHint{hint: ir.HintL3}
		case avg > 2:
			h = sampledHint{hint: ir.HintL2}
		default:
			continue // cache-hot: no hint
		}
		out[id] = h
	}
	return out, nil
}

// BenchResult is one benchmark's baseline-vs-variant comparison.
type BenchResult struct {
	Name  string
	Suite string
	// GainPct is the whole-program percentage gain of the variant over the
	// baseline (positive = faster), the quantity of the paper's bar
	// charts.
	GainPct float64
	// BaseLoops and VarLoops are per-loop evaluations.
	BaseLoops, VarLoops []*LoopEval
	// BaseAcct and VarAcct are whole-program cycle accountings on the
	// baseline-normalized scale (baseline total = 1).
	BaseAcct, VarAcct AcctF
}

// Non-loop cycle composition: the time outside pipelined loops is nearly
// identical under every configuration (the exception is register-stack
// traffic, see rseSensitivity). Its split across accounting states
// approximates a whole-program profile (the dominant EXE bubble matches
// the paper's Fig. 10 shape).
var nonLoopShape = AcctF{
	Total: 1, Unstalled: 0.50, Exe: 0.30, L1DFPU: 0.05, RSE: 0.035,
	Flush: 0.055, FE: 0.06,
}

// rseSensitivity couples non-loop register-stack-engine traffic to the
// loops' stacked-register consumption: functions whose pipelined loops
// allocate more stacked registers force the RSE to spill and refill more
// across calls (paper Sec. 4.5: RSE activity grows 14% with a ~14-28%
// register increase).
const rseSensitivity = 1.0

// rseExtraCap bounds the relative growth of non-loop RSE traffic: caller
// frames re-spill at most this much more, however register-hungry the
// loops become.
const rseExtraCap = 0.35

// EvalBenchmarkVariants evaluates one benchmark against the baseline for
// several variant configurations, computing the baseline only once. Loop
// weights are interpreted on the baseline: loop i with weight w contributes
// w of the baseline's (normalized) total; a variant scales each loop's
// contribution by its simulated cycle ratio.
func EvalBenchmarkVariants(b *workload.Benchmark, base Config, variants []Config) ([]*BenchResult, error) {
	nonLoop := 1 - b.LoopFraction()
	baseLoops := make([]*LoopEval, len(b.Loops))
	for i := range b.Loops {
		eb, err := EvalLoop(&b.Loops[i], base)
		if err != nil {
			return nil, err
		}
		baseLoops[i] = eb
	}
	out := make([]*BenchResult, len(variants))
	for vi, variant := range variants {
		res := &BenchResult{Name: b.Name, Suite: b.Suite, BaseLoops: baseLoops}
		res.BaseAcct.addF(nonLoopShape, nonLoop)
		res.VarAcct.addF(nonLoopShape, nonLoop)
		varTotal := nonLoop
		var baseGR, varGR int64
		for i := range b.Loops {
			spec := &b.Loops[i]
			ev, err := EvalLoop(spec, variant)
			if err != nil {
				return nil, err
			}
			res.VarLoops = append(res.VarLoops, ev)
			eb := baseLoops[i]
			baseGR += int64(eb.Reg.TotalGR())
			varGR += int64(ev.Reg.TotalGR())
			if eb.Cycles <= 0 {
				continue
			}
			scale := spec.Weight / eb.Cycles // sim cycles -> normalized share
			res.BaseAcct.addF(eb.Acct, scale)
			res.VarAcct.addF(ev.Acct, scale)
			varTotal += spec.Weight * (ev.Cycles / eb.Cycles)
		}
		// Register-stack traffic outside the loops grows with the loops'
		// stacked-register footprint.
		if baseGR > 0 && varGR > baseGR {
			grow := rseSensitivity * (float64(varGR)/float64(baseGR) - 1)
			if grow > rseExtraCap {
				grow = rseExtraCap
			}
			extra := nonLoop * nonLoopShape.RSE * grow
			res.VarAcct.RSE += extra
			res.VarAcct.Total += extra
			varTotal += extra
		}
		res.GainPct = stats.GainPct(1, varTotal)
		out[vi] = res
	}
	return out, nil
}

// EvalBenchmark evaluates one benchmark under the baseline and a single
// variant configuration.
func EvalBenchmark(b *workload.Benchmark, base, variant Config) (*BenchResult, error) {
	rs, err := EvalBenchmarkVariants(b, base, []Config{variant})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SuiteResult aggregates a suite under one variant configuration.
type SuiteResult struct {
	Suite      string
	Configs    []Config
	Benchmarks []string
	// Gains[benchIdx][cfgIdx] is the percentage gain of each variant over
	// the baseline.
	Gains [][]float64
	// Geomean[cfgIdx] is the suite geomean gain per variant.
	Geomean []float64
	// Results[benchIdx][cfgIdx] holds the full per-benchmark evaluations.
	Results [][]*BenchResult
}

// EvalSuite evaluates every benchmark of the suite against the baseline
// for each variant configuration. Benchmarks are evaluated on a worker
// pool (width Workers(); SetWorkers(1) restores sequential evaluation)
// and accumulated in suite order, so the result is identical at any
// width.
func EvalSuite(benchmarks []*workload.Benchmark, base Config, variants []Config) (*SuiteResult, error) {
	res := &SuiteResult{Configs: variants}
	if len(benchmarks) > 0 {
		res.Suite = benchmarks[0].Suite
	}
	perBench, err := parMap(len(benchmarks), Workers(), func(i int) ([]*BenchResult, error) {
		rs, err := EvalBenchmarkVariants(benchmarks[i], base, variants)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", benchmarks[i].Name, err)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	ratios := make([][]float64, len(variants))
	for bi, b := range benchmarks {
		res.Benchmarks = append(res.Benchmarks, b.Name)
		rs := perBench[bi]
		row := make([]float64, len(variants))
		for ci := range variants {
			row[ci] = rs[ci].GainPct
			ratios[ci] = append(ratios[ci], stats.RatioFromGain(rs[ci].GainPct))
		}
		res.Gains = append(res.Gains, row)
		res.Results = append(res.Results, rs)
	}
	res.Geomean = make([]float64, len(variants))
	for ci := range variants {
		res.Geomean[ci] = stats.GainFromRatios(ratios[ci])
	}
	return res, nil
}
