package hlo

import (
	"testing"

	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// streamLoop builds a unit-stride integer load + store loop.
func streamLoop() *ir.Loop {
	l := ir.NewLoop("stream")
	v, bs, bd := l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	st := ir.St(bd, v, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x10000)
	l.Init(bd, 0x20000)
	return l
}

func chaseLoop() *ir.Loop {
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	ld := ir.Ld(pnext, pcur, 8, 0)
	ld.Mem.Stride = ir.StridePointerChase
	l.Append(ld)
	l.Init(pnext, 0x30000)
	return l
}

func fpLoop() *ir.Loop {
	l := ir.NewLoop("fp")
	x, a := l.NewFR(), l.NewFR()
	bx := l.NewGR()
	ld := ir.LdF(x, bx, 8)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 8
	l.Append(ld)
	l.Append(ir.FMul(l.NewFR(), x, a))
	l.Init(bx, 0x40000)
	l.InitF(a, 2)
	return l
}

func TestEstimateII(t *testing.T) {
	m := machine.Itanium2()
	if got := EstimateII(m, streamLoop()); got != 1 {
		t.Errorf("IIest = %d, want 1", got)
	}
	// Memory-bound estimate: 9 refs / 4 M units -> 3.
	l := ir.NewLoop("mem")
	for i := 0; i < 9; i++ {
		b := l.NewGR()
		l.Init(b, int64(i*0x1000))
		l.Append(ir.Ld(l.NewGR(), b, 8, 8))
	}
	if got := EstimateII(m, l); got != 3 {
		t.Errorf("IIest = %d, want 3", got)
	}
}

func TestStreamPrefetchInserted(t *testing.T) {
	l := streamLoop()
	rep, err := Apply(l, Options{Mode: ModeNone, Prefetch: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefetchesAdded != 2 {
		t.Errorf("prefetches = %d, want 2 (load and store streams)", rep.PrefetchesAdded)
	}
	// The lfetch runs D iterations ahead of the load base.
	var pf *ir.Instr
	for _, in := range l.Body {
		if in.Op == ir.OpLfetch {
			pf = in
			break
		}
	}
	if pf == nil {
		t.Fatal("no lfetch in body")
	}
	init, ok := l.InitValue(pf.BaseReg())
	if !ok {
		t.Fatal("prefetch base has no init")
	}
	d := rep.Refs[0].Distance
	if d <= 0 {
		t.Fatal("no prefetch distance recorded")
	}
	if want := int64(0x10000) + int64(d)*4; init != want {
		t.Errorf("prefetch base init = %#x, want %#x", init, want)
	}
	if !l.Body[0].Mem.Prefetched || l.Body[0].Mem.PrefetchDistance != d {
		t.Error("load not marked prefetched")
	}
	if err := l.Verify(); err != nil {
		t.Errorf("loop invalid after HLO: %v", err)
	}
}

func TestPrefetchDistanceClampedByTrip(t *testing.T) {
	// "at least half of the prefetches issued will be useful".
	l := streamLoop()
	rep, err := Apply(l, Options{Mode: ModeNone, Prefetch: true, TripEstimate: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Refs[0].Distance; d > 10 {
		t.Errorf("distance %d > trip/2", d)
	}
}

func TestHeuristic1NotPrefetchable(t *testing.T) {
	l := chaseLoop()
	rep, err := Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 100})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Refs {
		if l.Body[r.ID].Op.IsLoad() {
			found = true
			if r.Heuristic != HNotPrefetchable || r.Hint != ir.HintL2 {
				t.Errorf("chase load: heuristic=%v hint=%v", r.Heuristic, r.Hint)
			}
			if !l.Body[r.ID].Mem.Delinquent {
				t.Error("chase load not flagged delinquent")
			}
		}
	}
	if !found {
		t.Fatal("no load report")
	}
	if rep.PrefetchesAdded != 0 {
		t.Error("pointer chase got a prefetch")
	}
}

func TestHeuristic2aSymbolicStride(t *testing.T) {
	l := ir.NewLoop("sym")
	x := l.NewFR()
	bx := l.NewGR()
	ld := ir.LdF(x, bx, 256)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideSymbolic, 256
	l.Append(ld)
	l.Append(ir.FMul(l.NewFR(), x, x))
	l.Init(bx, 0x10000)
	rep, err := Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Refs[0]
	if r.Heuristic != HSymbolicStride {
		t.Errorf("heuristic = %v", r.Heuristic)
	}
	// Reduced distance to bound TLB pressure; FP load -> L3 hint.
	if r.Distance != 2 {
		t.Errorf("distance = %d, want the reduced default 2", r.Distance)
	}
	if r.Hint != ir.HintL3 {
		t.Errorf("hint = %v, want L3 for FP loads", r.Hint)
	}
	if l.Body[0].Mem.Delinquent {
		t.Error("symbolic-stride load flagged delinquent (only heuristic 1 is)")
	}
}

func TestHeuristic2bIndirect(t *testing.T) {
	l := ir.NewLoop("ind")
	bi, ta, abase := l.NewGR(), l.NewGR(), l.NewGR()
	idx := l.NewGR()
	ldi := ir.Ld(idx, bi, 4, 4)
	ldi.Mem.Stride, ldi.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ldi)
	l.Append(ir.Shladd(ta, idx, 3, abase))
	ldv := ir.Ld(l.NewGR(), ta, 8, 0)
	ldv.Mem.Stride = ir.StrideIndirect
	ldv.Mem.IndexInit = 0x10000
	ldv.Mem.IndexStride = 4
	ldv.Mem.IndexSize = 4
	ldv.Mem.ScaleShift = 3
	ldv.Mem.ArrayBase = abase
	l.Append(ldv)
	l.Init(bi, 0x10000)
	l.Init(abase, 0x20000)
	nBefore := len(l.Body)
	rep, err := Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var indirect *RefReport
	for i := range rep.Refs {
		if rep.Refs[i].ID == 2 {
			indirect = &rep.Refs[i]
		}
	}
	if indirect == nil {
		t.Fatal("no report for the indirect load")
	}
	if indirect.Heuristic != HIndirect || indirect.Hint != ir.HintL2 {
		t.Errorf("indirect: heuristic=%v hint=%v", indirect.Heuristic, indirect.Hint)
	}
	// The indirect distance is TLB-capped and below the index distance.
	var index *RefReport
	for i := range rep.Refs {
		if rep.Refs[i].ID == 0 {
			index = &rep.Refs[i]
		}
	}
	if indirect.Distance >= index.Distance {
		t.Errorf("indirect distance %d >= index distance %d", indirect.Distance, index.Distance)
	}
	if indirect.Distance > 4 {
		t.Errorf("indirect distance %d exceeds the TLB cap", indirect.Distance)
	}
	// The speculative sequence ld/shladd/lfetch was emitted.
	added := len(l.Body) - nBefore
	if added < 4 { // index lfetch + (ld, shladd, lfetch)
		t.Errorf("only %d instructions added", added)
	}
	if err := l.Verify(); err != nil {
		t.Errorf("loop invalid after 2b: %v", err)
	}
}

func TestHeuristic3OzQPressure(t *testing.T) {
	l := ir.NewLoop("many")
	for i := 0; i < 7; i++ {
		b := l.NewGR()
		l.Init(b, int64(0x10000+i*0x10000))
		ld := ir.Ld(l.NewGR(), b, 8, 8)
		ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(ld)
	}
	rep, err := Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Refs {
		if r.Heuristic != HOzQPressure || r.Hint != ir.HintL2 || !r.L2Only {
			t.Errorf("ref %d: heuristic=%v hint=%v l2only=%v", r.ID, r.Heuristic, r.Hint, r.L2Only)
		}
	}
	// The inserted prefetches must be L2-targeted.
	for _, in := range l.Body {
		if in.Op == ir.OpLfetch && in.Mem.Hint != ir.HintL2 {
			t.Error("heuristic-3 lfetch not L2-targeted")
		}
	}
}

func TestModeAllL3(t *testing.T) {
	l := streamLoop()
	if _, err := Apply(l, Options{Mode: ModeAllL3, Prefetch: true, TripEstimate: 100}); err != nil {
		t.Fatal(err)
	}
	if l.Body[0].Mem.Hint != ir.HintL3 {
		t.Error("all-L3 mode did not hint the load")
	}
	// Stores carry no latency hints.
	if l.Body[1].Mem.Hint != ir.HintNone {
		t.Error("store hinted")
	}
}

func TestModeAllFPL2(t *testing.T) {
	li := streamLoop()
	Apply(li, Options{Mode: ModeAllFPL2, Prefetch: true, TripEstimate: 100})
	if li.Body[0].Mem.Hint != ir.HintNone {
		t.Error("integer load hinted in all-FP-L2 mode")
	}
	lf := fpLoop()
	Apply(lf, Options{Mode: ModeAllFPL2, Prefetch: true, TripEstimate: 100})
	if lf.Body[0].Mem.Hint != ir.HintL2 {
		t.Error("FP load not hinted in all-FP-L2 mode")
	}
}

func TestModeHLOFPDefault(t *testing.T) {
	// Unit-stride prefetchable FP loads get the moderate L2 default in
	// HLO mode (paper Sec. 4.3).
	l := fpLoop()
	Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 100})
	if l.Body[0].Mem.Hint != ir.HintL2 {
		t.Errorf("FP default hint = %v, want L2", l.Body[0].Mem.Hint)
	}
}

func TestModeNoneSetsNothing(t *testing.T) {
	l := chaseLoop()
	rep, _ := Apply(l, Options{Mode: ModeNone, Prefetch: true, TripEstimate: 100})
	if rep.HintsSet != 0 {
		t.Error("baseline mode set hints")
	}
}

func TestInvariantRefUntouched(t *testing.T) {
	l := ir.NewLoop("inv")
	v, b := l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 8, 0)
	ld.Mem.Stride = ir.StrideInvariant
	l.Append(ld)
	l.Append(ir.Add(l.NewGR(), v, v))
	l.Init(b, 0x1000)
	rep, _ := Apply(l, Options{Mode: ModeHLO, Prefetch: true, TripEstimate: 100})
	if rep.PrefetchesAdded != 0 || rep.Refs[0].Hint != ir.HintNone {
		t.Error("invariant reference prefetched or hinted")
	}
}

func TestLeadingReferenceDedup(t *testing.T) {
	// Two references in the same cache-line group: only the leader is
	// prefetched.
	l := ir.NewLoop("grp")
	v1, v2, b1, b2 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld1 := ir.Ld(v1, b1, 4, 8)
	ld1.Mem.Stride, ld1.Mem.StrideBytes = ir.StrideUnit, 8
	ld1.Mem.Group = 1
	l.Append(ld1)
	ld2 := ir.Ld(v2, b2, 4, 8)
	ld2.Mem.Stride, ld2.Mem.StrideBytes = ir.StrideUnit, 8
	ld2.Mem.Group = 1
	l.Append(ld2)
	l.Append(ir.Add(l.NewGR(), v1, v2))
	l.Init(b1, 0x10000)
	l.Init(b2, 0x10004)
	rep, _ := Apply(l, Options{Mode: ModeNone, Prefetch: true, TripEstimate: 100})
	if rep.PrefetchesAdded != 1 {
		t.Errorf("prefetches = %d, want 1 (leading reference only)", rep.PrefetchesAdded)
	}
	if !l.Body[0].Mem.LineLeader || l.Body[1].Mem.LineLeader {
		t.Error("leader marking wrong")
	}
	if !l.Body[1].Mem.Prefetched {
		t.Error("group member not marked as covered by the leader's prefetch")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	l := streamLoop()
	rep, _ := Apply(l, Options{Mode: ModeHLO, Prefetch: false, TripEstimate: 100})
	if rep.PrefetchesAdded != 0 {
		t.Error("prefetch inserted while disabled")
	}
	if len(l.Body) != 2 {
		t.Error("body changed while prefetch disabled")
	}
}

func TestHintModeString(t *testing.T) {
	for m, want := range map[HintMode]string{
		ModeNone: "baseline", ModeAllL3: "all-loads-L3",
		ModeAllFPL2: "all-FP-L2", ModeHLO: "HLO-hints",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	for h, want := range map[Heuristic]string{
		HNone: "none", HNotPrefetchable: "not-prefetchable",
		HSymbolicStride: "symbolic-stride", HIndirect: "indirect",
		HOzQPressure: "ozq-pressure",
	} {
		if h.String() != want {
			t.Errorf("heuristic %d = %q", h, h.String())
		}
	}
}
