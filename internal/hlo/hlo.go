// Package hlo models the High-Level Optimizer side of the paper: the
// software prefetcher (Mowry-style prefetch distance Lat/IIest with
// trip-count clamping, leading-reference deduplication per cache line,
// speculative index prefetching for indirect references) and — the paper's
// key coupling — the latency-hint heuristics of Sec. 3.2 that preselect
// loads with sub-optimal prefetch efficiency for longer-latency scheduling:
//
//  1. non-prefetchable, non-loop-invariant references (pointer chases);
//  2. (a) symbolic strides and (b) indirect references, both prefetched at
//     reduced distance to bound TLB pressure;
//  3. loops with many integer references missing L1, which are prefetched
//     into L2 only to relieve OzQ pressure.
//
// The hint token is one level below the best level the load can hit: L2
// for integer loads, L3 for FP loads (which bypass L1).
package hlo

import (
	"fmt"

	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// HintMode selects the experiment's hint policy.
type HintMode uint8

const (
	// ModeNone sets no hints: the paper's baseline compiler.
	ModeNone HintMode = iota
	// ModeAllL3 marks every load with an L3 hint: the headroom experiment
	// of Fig. 7 / Fig. 9 (left bars).
	ModeAllL3
	// ModeAllFPL2 marks every FP load with an L2 hint: the moderate
	// general setting of Fig. 8 (left bars).
	ModeAllFPL2
	// ModeHLO applies the prefetch-efficiency heuristics, with the L2
	// default for unhinted FP loads (Fig. 8 / Fig. 9 right bars).
	ModeHLO
)

// String names the mode as the paper's figures label it.
func (m HintMode) String() string {
	switch m {
	case ModeAllL3:
		return "all-loads-L3"
	case ModeAllFPL2:
		return "all-FP-L2"
	case ModeHLO:
		return "HLO-hints"
	default:
		return "baseline"
	}
}

// Heuristic identifies which Sec. 3.2 rule marked a reference.
type Heuristic uint8

const (
	// HNone: the reference was not marked.
	HNone Heuristic = iota
	// HNotPrefetchable is rule (1).
	HNotPrefetchable
	// HSymbolicStride is rule (2a).
	HSymbolicStride
	// HIndirect is rule (2b).
	HIndirect
	// HOzQPressure is rule (3).
	HOzQPressure
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HNotPrefetchable:
		return "not-prefetchable"
	case HSymbolicStride:
		return "symbolic-stride"
	case HIndirect:
		return "indirect"
	case HOzQPressure:
		return "ozq-pressure"
	default:
		return "none"
	}
}

// Options configures the HLO pass for one loop.
type Options struct {
	// Model supplies latencies; nil means machine.Itanium2().
	Model *machine.Model
	// Mode is the hint policy.
	Mode HintMode
	// Prefetch enables software prefetching (the paper's baseline has it
	// on; one headroom experiment turns it off).
	Prefetch bool
	// TripEstimate is the compile-time trip-count estimate used to clamp
	// prefetch distances; <= 0 means unknown.
	TripEstimate float64
	// OzQPressureThreshold is the number of distinct integer reference
	// groups beyond which heuristic (3) fires. Zero means the default (5).
	OzQPressureThreshold int
	// SymbolicDistance is the reduced prefetch distance for rule (2a);
	// zero means the default (2).
	SymbolicDistance int
	// IndirectDivisor reduces the indirect-reference distance for rule
	// (2b): D_indirect = max(1, D/IndirectDivisor). Zero means 4.
	IndirectDivisor int
	// IndirectMaxDistance caps the indirect-reference prefetch distance:
	// each outstanding indirect prefetch may touch a different page, so the
	// distance is bounded to prevent TLB overflow (paper Sec. 3.2, 2b).
	// Zero means the default (4).
	IndirectMaxDistance int
}

// RefReport records the prefetcher's decision for one memory reference.
type RefReport struct {
	ID        int
	Leader    bool
	Distance  int // prefetch distance in iterations; 0 = not prefetched
	Hint      ir.Hint
	Heuristic Heuristic
	L2Only    bool
}

// Report summarizes an HLO run over one loop.
type Report struct {
	IIEst           int
	Refs            []RefReport
	PrefetchesAdded int
	HintsSet        int
}

// EstimateII is the HLO's coarse initiation-interval estimate used in the
// prefetch-distance formula Lat/IIest.
func EstimateII(m *machine.Model, l *ir.Loop) int {
	var mem int
	for _, in := range l.Body {
		if in.Op.IsMem() {
			mem++
		}
	}
	ii := (len(l.Body) + 1 + m.IssueWidth - 1) / m.IssueWidth
	if v := (mem + m.Units[machine.PortM] - 1) / m.Units[machine.PortM]; v > ii {
		ii = v
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// Apply runs the HLO pass on the loop in place: it inserts lfetch
// instructions (and the speculative index-load sequences for indirect
// references), sets latency-hint tokens per the selected mode, and returns
// a report of every decision. The loop must not have been pipelined yet.
func Apply(l *ir.Loop, opts Options) (*Report, error) {
	if opts.Model == nil {
		opts.Model = machine.Itanium2()
	}
	m := opts.Model
	if opts.OzQPressureThreshold <= 0 {
		opts.OzQPressureThreshold = 5
	}
	if opts.SymbolicDistance <= 0 {
		opts.SymbolicDistance = 2
	}
	if opts.IndirectDivisor <= 0 {
		opts.IndirectDivisor = 4
	}
	if opts.IndirectMaxDistance <= 0 {
		opts.IndirectMaxDistance = 4
	}

	rep := &Report{IIEst: EstimateII(m, l)}

	// Group references into cache-line equivalence classes: explicit
	// MemRef.Group when set, otherwise by base register.
	refs := l.MemRefs()
	type groupInfo struct {
		leader *ir.Instr
	}
	groups := map[string]*groupInfo{}
	keyOf := func(in *ir.Instr) string {
		if in.Mem.Group != 0 {
			return fmt.Sprintf("g%d", in.Mem.Group)
		}
		return "b" + in.BaseReg().String()
	}
	var order []string
	for _, in := range refs {
		if in.Op == ir.OpLfetch {
			continue
		}
		k := keyOf(in)
		if groups[k] == nil {
			groups[k] = &groupInfo{leader: in}
			order = append(order, k)
			in.Mem.LineLeader = true
		}
	}

	// Heuristic (3) precondition: many distinct integer reference groups.
	intGroups := 0
	for _, k := range order {
		if !groups[k].leader.Op.IsFP() && groups[k].leader.Op != ir.OpLdF && groups[k].leader.Op != ir.OpStF {
			intGroups++
		}
	}
	ozqPressure := intGroups > opts.OzQPressureThreshold

	// Baseline distance: cover main-memory latency.
	baseDist := (m.Lat.Memory + rep.IIEst - 1) / rep.IIEst
	if opts.TripEstimate > 0 {
		// Keep at least half of the issued prefetches useful.
		if maxD := int(opts.TripEstimate / 2); baseDist > maxD {
			baseDist = maxD
		}
	}
	if baseDist < 1 {
		baseDist = 1
	}

	hintFor := func(in *ir.Instr) ir.Hint {
		if in.Op == ir.OpLdF {
			return ir.HintL3
		}
		return ir.HintL2
	}

	markHint := func(in *ir.Instr, h ir.Hint, why Heuristic, r *RefReport) {
		if !in.Op.IsLoad() {
			return
		}
		if h > in.Mem.Hint {
			in.Mem.Hint = h
			rep.HintsSet++
		}
		r.Hint = in.Mem.Hint
		r.Heuristic = why
	}

	for _, in := range refs {
		if in.Op == ir.OpLfetch {
			continue
		}
		r := RefReport{ID: in.ID, Leader: in.Mem.LineLeader, Hint: in.Mem.Hint}
		leader := groups[keyOf(in)].leader

		switch opts.Mode {
		case ModeAllL3:
			if in.Op.IsLoad() {
				markHint(in, ir.HintL3, HNone, &r)
			}
		case ModeAllFPL2:
			if in.Op == ir.OpLdF {
				markHint(in, ir.HintL2, HNone, &r)
			}
		}

		if !opts.Prefetch {
			// Without prefetching, HLO-mode hints for the efficiency
			// heuristics are moot (there is no prefetcher to be
			// inefficient); the headroom modes above still apply.
			rep.Refs = append(rep.Refs, r)
			continue
		}

		isLeader := in == leader
		switch in.Mem.Stride {
		case ir.StrideInvariant:
			// Loop-invariant: stays in registers/caches; neither prefetch
			// nor hint.
		case ir.StrideUnit, ir.StrideConst:
			if isLeader {
				d := baseDist
				if ozqPressure {
					// Rule (3): prefetch into L2 only; integer loads of the
					// group carry the L2 hint.
					emitStreamPrefetch(l, in, d, ir.HintL2)
					rep.PrefetchesAdded++
					r.Distance, r.L2Only = d, true
					if opts.Mode == ModeHLO {
						markHint(in, ir.HintL2, HOzQPressure, &r)
					}
				} else {
					emitStreamPrefetch(l, in, d, ir.HintNone)
					rep.PrefetchesAdded++
					r.Distance = d
				}
				in.Mem.Prefetched = true
				in.Mem.PrefetchDistance = r.Distance
			} else if leader.Mem.Prefetched {
				in.Mem.Prefetched = true
				in.Mem.PrefetchDistance = leader.Mem.PrefetchDistance
				if opts.Mode == ModeHLO && ozqPressure {
					// All accesses to the marked line share the hint.
					markHint(in, ir.HintL2, HOzQPressure, &r)
				}
			}
		case ir.StrideSymbolic:
			// Rule (2a): prefetchable, but the distance is limited to
			// bound TLB pressure, so part of the latency stays exposed.
			if isLeader {
				d := opts.SymbolicDistance
				emitStreamPrefetch(l, in, d, ir.HintNone)
				rep.PrefetchesAdded++
				r.Distance = d
				in.Mem.Prefetched = true
				in.Mem.PrefetchDistance = d
			}
			if opts.Mode == ModeHLO {
				markHint(in, hintFor(in), HSymbolicStride, &r)
			}
		case ir.StrideIndirect:
			// Rule (2b): a[b[i]] — speculative index load feeding an
			// lfetch, at a reduced distance.
			if isLeader && in.Mem.ArrayBase != ir.None {
				d := baseDist / opts.IndirectDivisor
				if d > opts.IndirectMaxDistance {
					d = opts.IndirectMaxDistance
				}
				if d < 1 {
					d = 1
				}
				emitIndirectPrefetch(l, in, d)
				rep.PrefetchesAdded++
				r.Distance = d
				in.Mem.Prefetched = true
				in.Mem.PrefetchDistance = d
			}
			if opts.Mode == ModeHLO {
				markHint(in, hintFor(in), HIndirect, &r)
			}
		default:
			// StridePointerChase, StrideUnknown: rule (1) — cannot be
			// prefetched at all. Such loads are also flagged delinquent:
			// their expected latency is long enough that boosting pays off
			// even below the trip-count threshold (Sec. 3.1 / Sec. 4.4).
			if opts.Mode == ModeHLO {
				markHint(in, hintFor(in), HNotPrefetchable, &r)
				if in.Op.IsLoad() {
					in.Mem.Delinquent = true
				}
			}
		}
		rep.Refs = append(rep.Refs, r)
	}

	// ModeHLO default: FP loads with no heuristic hint get the moderate L2
	// default (paper Sec. 4.3).
	if opts.Mode == ModeHLO {
		for i := range rep.Refs {
			in := l.Body[rep.Refs[i].ID]
			if in.Op == ir.OpLdF && in.Mem.Hint == ir.HintNone {
				in.Mem.Hint = ir.HintL2
				rep.Refs[i].Hint = ir.HintL2
				rep.HintsSet++
			}
		}
	}
	return rep, nil
}

// emitStreamPrefetch appends an lfetch running d iterations ahead of the
// reference's address stream. hint selects L2-only prefetching for rule
// (3); HintNone fills through to L1.
func emitStreamPrefetch(l *ir.Loop, ref *ir.Instr, d int, hint ir.Hint) {
	stride := ref.Mem.StrideBytes
	if stride == 0 {
		stride = ref.Mem.PostInc
	}
	base := l.NewGR()
	init, _ := l.InitValue(ref.BaseReg())
	l.Init(base, init+int64(d)*stride)
	pf := ir.Lfetch(base, stride, hint)
	pf.Comment = fmt.Sprintf("prefetch for body[%d], distance %d", ref.ID, d)
	l.Append(pf)
}

// emitIndirectPrefetch appends the rule (2b) sequence for a[b[i]]:
//
//	ld   idx = [pfIdx], IndexStride   // speculative index load, d ahead
//	shladd addr = idx << ScaleShift, ArrayBase
//	lfetch [addr]
func emitIndirectPrefetch(l *ir.Loop, ref *ir.Instr, d int) {
	mem := ref.Mem
	pfIdx := l.NewGR()
	l.Init(pfIdx, mem.IndexInit+int64(d)*mem.IndexStride)
	idx := l.NewGR()
	addr := l.NewGR()
	ldi := ir.Ld(idx, pfIdx, mem.IndexSize, mem.IndexStride)
	ldi.Mem.Stride = ir.StrideConst
	ldi.Mem.StrideBytes = mem.IndexStride
	ldi.Comment = fmt.Sprintf("speculative index load for body[%d]", ref.ID)
	l.Append(ldi)
	l.Append(ir.Shladd(addr, idx, mem.ScaleShift, mem.ArrayBase))
	pf := ir.Lfetch(addr, 0, ir.HintNone)
	pf.Comment = fmt.Sprintf("indirect prefetch for body[%d], distance %d", ref.ID, d)
	l.Append(pf)
}
