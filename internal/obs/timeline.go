package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// TimelineEvent is one Chrome trace-event (catapult) record. Only the
// complete-event form ("ph":"X") is emitted: ts/dur are in microseconds in
// the catapult schema, but the simulator maps one cycle to one microsecond
// so chrome://tracing renders cycles directly.
type TimelineEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultTimelineLimit bounds a Timeline when no explicit limit is given;
// beyond it events are counted as dropped rather than stored, so tracing a
// long simulation cannot exhaust memory.
const DefaultTimelineLimit = 1 << 20

// Timeline collects catapult events. Like Trace it is nil-safe: a nil
// *Timeline records nothing and costs nothing.
type Timeline struct {
	mu      sync.Mutex
	limit   int
	events  []TimelineEvent
	dropped int64
}

// NewTimeline returns a timeline holding at most limit events
// (limit <= 0 selects DefaultTimelineLimit).
func NewTimeline(limit int) *Timeline {
	if limit <= 0 {
		limit = DefaultTimelineLimit
	}
	return &Timeline{limit: limit}
}

// On reports whether the timeline is collecting.
func (tl *Timeline) On() bool { return tl != nil }

// Complete records one complete ("X") event; no-op on nil.
func (tl *Timeline) Complete(name string, ts, dur int64, pid, tid int, args map[string]any) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if len(tl.events) >= tl.limit {
		tl.dropped++
		return
	}
	tl.events = append(tl.events, TimelineEvent{
		Name: name, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
	})
}

// Len returns the number of stored events.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// Dropped returns how many events were discarded at the limit.
func (tl *Timeline) Dropped() int64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.dropped
}

// Events returns a snapshot copy of the stored events.
func (tl *Timeline) Events() []TimelineEvent {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]TimelineEvent(nil), tl.events...)
}

// WriteJSON streams the timeline as a catapult JSON array — the format
// chrome://tracing and Perfetto load directly.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range tl.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
