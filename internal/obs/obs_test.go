package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.On() {
		t.Fatal("nil trace reports On")
	}
	tr.Emit(OutcomeEvent{Result: OutcomePipelined}) // must not panic
	if tr.Events() != nil {
		t.Fatal("nil trace returned events")
	}
	if tr.Len() != 0 {
		t.Fatal("nil trace has nonzero length")
	}
	if _, ok := tr.Outcome(); ok {
		t.Fatal("nil trace has an outcome")
	}
}

func TestAppendFrom(t *testing.T) {
	a, b := New(), New()
	a.Emit(FallbackEvent{Rung: RungRaiseII, II: 2})
	b.Emit(SchedEvent{II: 2, OK: true})
	b.Emit(OutcomeEvent{Result: OutcomePipelined, II: 2})
	a.AppendFrom(b)
	if a.Len() != 3 {
		t.Fatalf("merged len = %d, want 3", a.Len())
	}
	evs := a.Events()
	if _, ok := evs[0].(FallbackEvent); !ok {
		t.Fatalf("event 0 = %T, want FallbackEvent", evs[0])
	}
	if _, ok := evs[1].(SchedEvent); !ok {
		t.Fatalf("event 1 = %T, want SchedEvent (appended in order)", evs[1])
	}
	if b.Len() != 2 {
		t.Fatalf("source mutated: len = %d", b.Len())
	}
	// Nil receiver and nil source are both no-ops.
	var nilTr *Trace
	nilTr.AppendFrom(b)
	a.AppendFrom(nil)
	a.AppendFrom(New())
	if a.Len() != 3 {
		t.Fatalf("nil/empty AppendFrom changed len to %d", a.Len())
	}
}

func TestTraceJSONCarriesKinds(t *testing.T) {
	tr := New()
	tr.Emit(IIBoundsEvent{ResII: 1, BaseRecII: 4, PolicyRecII: 4, MinII: 4, MaxII: 24})
	tr.Emit(LoadClassEvent{Instr: 2, Hint: "L3", Eligible: true, BaseLat: 4, ExpectedLat: 21, Slack: 17})
	tr.Emit(SchedEvent{II: 4, OK: true, Attempts: 12, Budget: 480, Stages: 6})
	tr.Emit(OutcomeEvent{Result: OutcomePipelined, II: 4, Stages: 6})

	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("trace JSON is not an array of objects: %v\n%s", err, b)
	}
	wantKinds := []string{"ii-bounds", "load-class", "modsched", "outcome"}
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(got), len(wantKinds))
	}
	for i, m := range got {
		if m["kind"] != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %s", i, m["kind"], wantKinds[i])
		}
	}
	if got[0]["min_ii"] != float64(4) {
		t.Errorf("ii-bounds min_ii = %v, want 4", got[0]["min_ii"])
	}
}

func TestTraceRenderAndOutcome(t *testing.T) {
	tr := New()
	tr.Emit(LoadClassEvent{Instr: 5, Name: "next", Critical: true,
		CycleNodes: []int{5, 7}, CycleII: 21, Floor: 4, BaseLat: 4, Slack: -1})
	tr.Emit(FallbackEvent{Rung: RungReduceLatency, II: 4})
	tr.Emit(OutcomeEvent{Result: OutcomeReducedLatency, II: 4, Stages: 3})

	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CRITICAL", "5→7", "reduced to base", "fallback-reduced-latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	o, ok := tr.Outcome()
	if !ok || o.Result != OutcomeReducedLatency || o.II != 4 {
		t.Fatalf("Outcome() = %+v, %v", o, ok)
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Emit(SchedEvent{II: j})
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("lost events: %d != 800", tr.Len())
	}
}

func TestTimelineJSONSchema(t *testing.T) {
	tl := NewTimeline(0)
	tl.Complete("ld4", 10, 1, 0, 2, map[string]any{"level": 3})
	tl.Complete("stall(data)", 11, 7, 0, 100, nil)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TS   *int64 `json:"ts"`
		Dur  *int64 `json:"dur"`
		PID  *int   `json:"pid"`
		TID  *int   `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("not a catapult array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	for i, e := range got {
		if e.Name == "" || e.Ph != "X" || e.TS == nil || e.Dur == nil || e.PID == nil || e.TID == nil {
			t.Errorf("event %d missing required catapult fields: %+v", i, e)
		}
	}
}

func TestTimelineLimitAndNil(t *testing.T) {
	tl := NewTimeline(2)
	for i := 0; i < 5; i++ {
		tl.Complete("e", int64(i), 1, 0, 0, nil)
	}
	if tl.Len() != 2 || tl.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tl.Len(), tl.Dropped())
	}

	var nilTL *Timeline
	if nilTL.On() {
		t.Fatal("nil timeline reports On")
	}
	nilTL.Complete("e", 0, 1, 0, 0, nil) // must not panic
	if nilTL.Len() != 0 || nilTL.Dropped() != 0 {
		t.Fatal("nil timeline stored events")
	}
}
