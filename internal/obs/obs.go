// Package obs is the structured observability layer for the pipeline
// stack: a zero-dependency event trace that the compiler (core, modsched,
// regalloc) fills with typed decision records — load classification,
// hint→latency translation, II-search iterations, fallback-ladder rungs,
// register-allocation outcomes — and that renders both as JSON (for the
// service and machine consumers) and as a human-readable report (the
// `ltsp -explain` output). A nil *Trace disables collection entirely: every
// method is nil-safe and emission sites guard with On(), so the untraced
// compile path pays nothing.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one typed trace record. Kind returns the stable snake-less
// identifier spliced into the JSON rendering as the "kind" field.
type Event interface {
	Kind() string
	human() string
}

// Trace collects events from one compilation. Safe for concurrent use; all
// methods are nil-safe so callers thread an optional *Trace without guards.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// tracePool backs NewScratch/Recycle: short-lived buffered traces (one
// per speculative II-search attempt) reuse their event arrays instead of
// growing fresh ones per attempt.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewScratch returns a pooled empty trace for short-lived buffered
// collection. Pair with Recycle once the events have been consumed;
// leaking a scratch trace to the GC is safe, just slower.
func NewScratch() *Trace { return tracePool.Get().(*Trace) }

// Recycle empties the trace and returns it to the scratch pool. The
// caller must hold the only reference; event values previously read via
// Events() remain valid (Events copies).
func (t *Trace) Recycle() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.events {
		t.events[i] = nil // drop event references while keeping the array
	}
	t.events = t.events[:0]
	t.mu.Unlock()
	tracePool.Put(t)
}

// On reports whether tracing is enabled. Hot paths check it before
// constructing event values.
func (t *Trace) On() bool { return t != nil }

// Emit appends one event; no-op on a nil trace.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a snapshot copy of the collected events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// AppendFrom appends every event of src, in order, to t. The speculative
// II search uses it to merge per-attempt buffered traces into the main
// trace in commit order, reproducing the sequential event stream exactly.
// No-op when either trace is nil.
func (t *Trace) AppendFrom(src *Trace) {
	if t == nil || src == nil {
		return
	}
	evs := src.Events()
	if len(evs) == 0 {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// Len returns the number of collected events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Outcome returns the final OutcomeEvent, if one was emitted.
func (t *Trace) Outcome() (OutcomeEvent, bool) {
	evs := t.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		if o, ok := evs[i].(OutcomeEvent); ok {
			return o, true
		}
	}
	return OutcomeEvent{}, false
}

// MarshalJSON renders the trace as a JSON array of event objects, each
// carrying its "kind" as the first field.
func (t *Trace) MarshalJSON() ([]byte, error) {
	evs := t.Events()
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, e := range evs {
		if i > 0 {
			buf.WriteByte(',')
		}
		b, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		kind, _ := json.Marshal(e.Kind())
		if len(b) >= 2 && b[0] == '{' {
			buf.WriteString(`{"kind":`)
			buf.Write(kind)
			if len(b) > 2 {
				buf.WriteByte(',')
			}
			buf.Write(b[1:])
		} else {
			buf.WriteString(`{"kind":`)
			buf.Write(kind)
			buf.WriteString(`,"value":`)
			buf.Write(b)
			buf.WriteByte('}')
		}
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// Render writes the human-readable decision report, one line per event.
func (t *Trace) Render(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.human()); err != nil {
			return err
		}
	}
	return nil
}

// Compilation outcomes reported by OutcomeEvent.Result and counted by the
// service's /metrics pipeliner-outcome counters.
const (
	// OutcomePipelined: pipelined at MinII with the policy latencies intact.
	OutcomePipelined = "pipelined"
	// OutcomeReducedLatency: pipelined, but the fallback ladder's first rung
	// fired — non-critical latencies were dropped back to base to satisfy
	// register allocation.
	OutcomeReducedLatency = "fallback-reduced-latency"
	// OutcomeRaisedII: pipelined at an II above MinII (the ladder's second
	// rung; the policy latencies may or may not have survived).
	OutcomeRaisedII = "fallback-raised-ii"
	// OutcomeSequential: pipelining failed or was disabled and the loop got
	// an acyclic list schedule.
	OutcomeSequential = "sequential"
)

// HintLatencyEvent records one hint→latency translation: what scheduling
// latency the HLO hint token on a load requests from the machine model.
type HintLatencyEvent struct {
	Instr   int    `json:"instr"`
	Name    string `json:"name,omitempty"`
	Hint    string `json:"hint"`
	FP      bool   `json:"fp,omitempty"`
	BaseLat int    `json:"base_lat"`
	HintLat int    `json:"hint_lat"`
}

// Kind implements Event.
func (HintLatencyEvent) Kind() string { return "hint-latency" }

func (e HintLatencyEvent) human() string {
	return fmt.Sprintf("hint: load [%d]%s hint %s → expected latency %d (base %d)",
		e.Instr, nameSuffix(e.Name), e.Hint, e.HintLat, e.BaseLat)
}

// LoadClassEvent records the critical/non-critical classification of one
// load (paper Sec. 3.3). For a critical load, CycleNodes/CycleII/Floor
// identify the binding recurrence cycle: the cycle whose II bound under
// elevated latencies would exceed the loop's II floor. For a non-critical
// load, Slack is its scheduling slack at MinII under the policy latencies.
type LoadClassEvent struct {
	Instr       int    `json:"instr"`
	Name        string `json:"name,omitempty"`
	Hint        string `json:"hint"`
	Eligible    bool   `json:"eligible"`
	Critical    bool   `json:"critical"`
	BaseLat     int    `json:"base_lat"`
	ExpectedLat int    `json:"expected_lat"`
	CycleNodes  []int  `json:"cycle_nodes,omitempty"`
	CycleII     int    `json:"cycle_ii,omitempty"`
	Floor       int    `json:"floor,omitempty"`
	Slack       int    `json:"slack"`
}

// Kind implements Event.
func (LoadClassEvent) Kind() string { return "load-class" }

func (e LoadClassEvent) human() string {
	if e.Critical {
		return fmt.Sprintf("classify: load [%d]%s CRITICAL — cycle {%s} would impose II=%d > floor %d; kept at base latency %d",
			e.Instr, nameSuffix(e.Name), joinInts(e.CycleNodes, "→"), e.CycleII, e.Floor, e.BaseLat)
	}
	if !e.Eligible {
		return fmt.Sprintf("classify: load [%d]%s not eligible for boosting; base latency %d",
			e.Instr, nameSuffix(e.Name), e.BaseLat)
	}
	return fmt.Sprintf("classify: load [%d]%s non-critical (slack %d at MinII) — scheduled latency %d (base %d, hint %s)",
		e.Instr, nameSuffix(e.Name), e.Slack, e.ExpectedLat, e.BaseLat, e.Hint)
}

// IIBoundsEvent records the II search bounds: the resource bound, the base
// recurrence bound, the recurrence bound under the policy latencies, and
// the derived search interval [MinII, MaxII].
type IIBoundsEvent struct {
	ResII       int `json:"res_ii"`
	BaseRecII   int `json:"base_rec_ii"`
	PolicyRecII int `json:"policy_rec_ii"`
	MinII       int `json:"min_ii"`
	MaxII       int `json:"max_ii"`
}

// Kind implements Event.
func (IIBoundsEvent) Kind() string { return "ii-bounds" }

func (e IIBoundsEvent) human() string {
	return fmt.Sprintf("bounds: ResII=%d BaseRecII=%d policy RecII=%d → MinII=%d, search cap %d",
		e.ResII, e.BaseRecII, e.PolicyRecII, e.MinII, e.MaxII)
}

// SchedEvent records one modulo-scheduling attempt at a fixed II: whether
// it completed, how many placement operations it spent against its budget,
// and how many evictions (backtracking displacements) occurred.
type SchedEvent struct {
	II        int  `json:"ii"`
	OK        bool `json:"ok"`
	Attempts  int  `json:"attempts"`
	Evictions int  `json:"evictions"`
	Budget    int  `json:"budget"`
	Stages    int  `json:"stages,omitempty"`
}

// Kind implements Event.
func (SchedEvent) Kind() string { return "modsched" }

func (e SchedEvent) human() string {
	if e.OK {
		return fmt.Sprintf("modsched: II=%d ok — %d stages (attempts %d, evictions %d, budget %d)",
			e.II, e.Stages, e.Attempts, e.Evictions, e.Budget)
	}
	return fmt.Sprintf("modsched: II=%d failed — budget exhausted (attempts %d, evictions %d, budget %d)",
		e.II, e.Attempts, e.Evictions, e.Budget)
}

// RegallocEvent records one rotating register allocation attempt.
type RegallocEvent struct {
	II      int    `json:"ii"`
	Reduced bool   `json:"reduced"`
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	RotGR   int    `json:"rot_gr,omitempty"`
	RotFR   int    `json:"rot_fr,omitempty"`
	RotPR   int    `json:"rot_pr,omitempty"`
	Static  int    `json:"static,omitempty"`
}

// Kind implements Event.
func (RegallocEvent) Kind() string { return "regalloc" }

func (e RegallocEvent) human() string {
	lat := "policy latencies"
	if e.Reduced {
		lat = "reduced (base) latencies"
	}
	if e.OK {
		return fmt.Sprintf("regalloc: II=%d ok with %s — rot GR=%d FR=%d PR=%d, static %d",
			e.II, lat, e.RotGR, e.RotFR, e.RotPR, e.Static)
	}
	return fmt.Sprintf("regalloc: II=%d failed with %s — %s", e.II, lat, e.Err)
}

// Fallback-ladder rungs reported by FallbackEvent.Rung (paper Sec. 3.3).
const (
	// RungReduceLatency: retry the same II with non-critical latencies
	// dropped to base.
	RungReduceLatency = "reduce-latency"
	// RungRaiseII: move to the next II with the policy latencies restored.
	RungRaiseII = "raise-ii"
)

// FallbackEvent records one rung of the fallback ladder firing.
type FallbackEvent struct {
	Rung string `json:"rung"`
	II   int    `json:"ii"`
}

// Kind implements Event.
func (FallbackEvent) Kind() string { return "fallback" }

func (e FallbackEvent) human() string {
	switch e.Rung {
	case RungReduceLatency:
		return fmt.Sprintf("fallback: retry II=%d with latencies reduced to base", e.II)
	default:
		return fmt.Sprintf("fallback: raise II to %d (hints re-enabled)", e.II)
	}
}

// CodegenEvent records a kernel-generation failure (structural issues such
// as cross-stage in-place reads); successes are implied by OutcomeEvent.
type CodegenEvent struct {
	II  int    `json:"ii"`
	Err string `json:"err"`
}

// Kind implements Event.
func (CodegenEvent) Kind() string { return "codegen" }

func (e CodegenEvent) human() string {
	return fmt.Sprintf("codegen: II=%d failed — %s", e.II, e.Err)
}

// LoadSchedEvent records where one load landed in the accepted schedule:
// its realized extra latency d, clustering factor k = d/II + 1 (Equ. 3),
// and pipeline stage/slot.
type LoadSchedEvent struct {
	Instr    int    `json:"instr"`
	Name     string `json:"name,omitempty"`
	Critical bool   `json:"critical"`
	Hint     string `json:"hint"`
	BaseLat  int    `json:"base_lat"`
	SchedLat int    `json:"sched_lat"`
	ExtraD   int    `json:"extra_d"`
	ClusterK int    `json:"cluster_k"`
	Stage    int    `json:"stage"`
	Slot     int    `json:"slot"`
}

// Kind implements Event.
func (LoadSchedEvent) Kind() string { return "load-sched" }

func (e LoadSchedEvent) human() string {
	class := "non-critical"
	if e.Critical {
		class = "critical"
	}
	return fmt.Sprintf("sched: load [%d]%s %s — latency %d (base %d), realized d=%d, k=%d, stage %d slot %d",
		e.Instr, nameSuffix(e.Name), class, e.SchedLat, e.BaseLat, e.ExtraD, e.ClusterK, e.Stage, e.Slot)
}

// OutcomeEvent is the final record of a compilation: which outcome the
// search reached and the headline schedule parameters.
type OutcomeEvent struct {
	Result         string `json:"result"`
	II             int    `json:"ii,omitempty"`
	Stages         int    `json:"stages,omitempty"`
	Attempts       int    `json:"attempts,omitempty"`
	IIBumps        int    `json:"ii_bumps,omitempty"`
	LatencyReduced bool   `json:"latency_reduced,omitempty"`
	Err            string `json:"err,omitempty"`
}

// Kind implements Event.
func (OutcomeEvent) Kind() string { return "outcome" }

func (e OutcomeEvent) human() string {
	switch e.Result {
	case OutcomeSequential:
		if e.Err != "" {
			return fmt.Sprintf("outcome: sequential schedule (pipelining failed: %s)", e.Err)
		}
		return "outcome: sequential schedule"
	default:
		return fmt.Sprintf("outcome: %s at II=%d, %d stages (%d II bumps, %d placement attempts)",
			e.Result, e.II, e.Stages, e.IIBumps, e.Attempts)
	}
}

// Exact-backend solve statuses reported by ExactEvent.Status.
const (
	// ExactFeasible: the branch-and-bound solver found a schedule at
	// this II (optimal by construction: every lower II was refuted
	// first, or this II meets the lower bound).
	ExactFeasible = "feasible"
	// ExactInfeasible: the solver proved no schedule exists at this II
	// within its scheduling window.
	ExactInfeasible = "infeasible"
	// ExactUnknown: the solver ran out of node budget or deadline before
	// deciding; the attempt falls back to the heuristic.
	ExactUnknown = "unknown"
)

// ExactEvent records one exact branch-and-bound solve at a fixed II.
type ExactEvent struct {
	II      int    `json:"ii"`
	Status  string `json:"status"`
	Nodes   int64  `json:"nodes"`
	MaxLife int    `json:"max_life,omitempty"`
	// LifeProven reports that MaxLife is the provably minimal max
	// register lifetime at this II (the tiebreak search ran to proof
	// rather than exhausting its budget).
	LifeProven bool `json:"life_proven,omitempty"`
}

// Kind implements Event.
func (ExactEvent) Kind() string { return "exact" }

func (e ExactEvent) human() string {
	switch e.Status {
	case ExactFeasible:
		proof := "best-effort"
		if e.LifeProven {
			proof = "proven minimal"
		}
		return fmt.Sprintf("exact: II=%d feasible — max register lifetime %d (%s), %d nodes",
			e.II, e.MaxLife, proof, e.Nodes)
	case ExactInfeasible:
		return fmt.Sprintf("exact: II=%d proven infeasible (%d nodes)", e.II, e.Nodes)
	default:
		return fmt.Sprintf("exact: II=%d undecided — budget exhausted (%d nodes)", e.II, e.Nodes)
	}
}

// ExactFallbackEvent records the exact backend handing one fixed-II
// attempt to the heuristic scheduler: the loop exceeded the solver's
// size budget, or the solve was undecided within its node budget or
// deadline. The attempt then proceeds exactly as the heuristic backend
// would run it — a fallback is never an error.
type ExactFallbackEvent struct {
	II     int    `json:"ii"`
	Reason string `json:"reason"`
}

// Kind implements Event.
func (ExactFallbackEvent) Kind() string { return "exact-fallback" }

func (e ExactFallbackEvent) human() string {
	return fmt.Sprintf("exact: II=%d handed to heuristic (%s)", e.II, e.Reason)
}

// OracleGapEvent records the oracle backend's optimality-gap probe: the
// heuristic's achieved II and max register lifetime against the exact
// solver's. ExactII equals the heuristic II when every lower II was
// refuted; Proven is false when any probe was undecided.
type OracleGapEvent struct {
	HeurII    int  `json:"heur_ii"`
	ExactII   int  `json:"exact_ii"`
	Proven    bool `json:"proven"`
	HeurLife  int  `json:"heur_life"`
	ExactLife int  `json:"exact_life,omitempty"`
}

// Kind implements Event.
func (OracleGapEvent) Kind() string { return "oracle-gap" }

func (e OracleGapEvent) human() string {
	proof := "unproven"
	if e.Proven {
		proof = "proven"
	}
	return fmt.Sprintf("oracle: heuristic II=%d vs exact II=%d (%s), max lifetime %d vs %d",
		e.HeurII, e.ExactII, proof, e.HeurLife, e.ExactLife)
}

func nameSuffix(name string) string {
	if name == "" {
		return ""
	}
	return " " + name
}

func joinInts(xs []int, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, sep)
}
