// Package cluster implements consistent-hash ownership of loop hashes
// across a set of ltspd peers.
//
// Each peer is mapped to many points ("virtual nodes") on a 64-bit hash
// ring; a loop hash is owned by the first peer clockwise from the
// hash's own point, and its replica set is the next n distinct peers in
// ring order. Virtual nodes give each peer a near-uniform share of the
// key space, and consistent hashing keeps ownership stable under
// membership change: when a peer joins or leaves, only the keys on the
// arcs it gains or loses move — on average 1/(peers) of the key space —
// instead of nearly everything, as with modulo placement.
//
// Ownership is a pure function of (peer IDs, VNodes, key): every node
// and every fleet-aware client that agrees on the peer list computes
// the same owner with no coordination. The Resolver interface abstracts
// where the peer list comes from; Static is the fixed-list resolver the
// -peers flag builds, and anything discovery-shaped (DNS, a membership
// service) can implement Resolver without touching the ring math.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Peer is one ltspd process: a stable identity on the ring and the base
// URL its peers reach it at. ID and Addr are usually the same string (a
// URL like "http://10.0.0.3:8347"); they are distinct fields so a
// deployment can keep ring identity stable across address changes.
type Peer struct {
	ID   string
	Addr string
}

// Resolver supplies the current peer list. Implementations must return
// peers in a deterministic order for equal membership (the ring sorts
// again, so the order itself does not matter — only the set does).
type Resolver interface {
	// Peers returns the current cluster membership, including the local
	// peer.
	Peers() []Peer
}

// Static is a fixed-membership Resolver.
type Static []Peer

// Peers implements Resolver.
func (s Static) Peers() []Peer { return s }

// ParsePeers parses a comma-separated peer list, each element either
// "addr" (ID = Addr) or "id=addr". Empty elements are ignored.
func ParsePeers(list string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p := Peer{ID: part, Addr: part}
		if id, addr, ok := strings.Cut(part, "="); ok {
			if id == "" || addr == "" {
				return nil, fmt.Errorf("cluster: malformed peer %q (want id=addr)", part)
			}
			p = Peer{ID: id, Addr: addr}
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		peers = append(peers, p)
	}
	return peers, nil
}

// DefaultVNodes is the virtual-node count per peer. 128 points per peer
// keeps the load imbalance of the max-loaded peer within a few percent
// for small clusters while ring construction stays microseconds.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a peer set. Build one
// with New and rebuild on membership change; lookups are lock-free.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []Peer      // sorted by ID
	vnodes int
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// New builds a ring over the resolver's current peers with vnodes
// virtual nodes per peer (<= 0 selects DefaultVNodes). An empty peer set
// yields an empty ring whose lookups return nothing.
func New(r Resolver, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	peers := append([]Peer(nil), r.Peers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	ring := &Ring{peers: peers, vnodes: vnodes}
	ring.points = make([]ringPoint, 0, len(peers)*vnodes)
	for pi, p := range peers {
		for v := 0; v < vnodes; v++ {
			h := hashString(p.ID + "#" + strconv.Itoa(v))
			ring.points = append(ring.points, ringPoint{hash: h, peer: pi})
		}
	}
	sort.Slice(ring.points, func(i, j int) bool {
		a, b := ring.points[i], ring.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Equal hash points (vanishingly rare) tie-break by peer index so
		// the ring is deterministic regardless of sort stability.
		return a.peer < b.peer
	})
	return ring
}

// hashString maps a string to its ring coordinate: the first 8 bytes of
// its sha256. sha256 rather than a fast non-cryptographic hash because
// ring coordinates must be stable across processes, architectures and
// releases — they are part of the wire contract between fleet-aware
// clients and servers.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Peers returns the ring's peer set, sorted by ID.
func (r *Ring) Peers() []Peer { return r.peers }

// Owner returns the peer that owns key (the primary replica). ok is
// false on an empty ring.
func (r *Ring) Owner(key string) (Peer, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return Peer{}, false
	}
	return owners[0], true
}

// Owners returns the first n distinct peers clockwise from key's ring
// coordinate: the key's replica set, primary first. Fewer than n peers
// on the ring returns them all, in ring order from the key.
func (r *Ring) Owners(key string, n int) []Peer {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hashString(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]Peer, 0, n)
	seen := make(map[int]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		pt := r.points[(i+j)%len(r.points)]
		if !seen[pt.peer] {
			seen[pt.peer] = true
			out = append(out, r.peers[pt.peer])
		}
	}
	return out
}

// IsOwner reports whether the peer with the given ID is in key's
// replica set of size n.
func (r *Ring) IsOwner(id, key string, n int) bool {
	for _, p := range r.Owners(key, n) {
		if p.ID == id {
			return true
		}
	}
	return false
}
