package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Peer health states. A peer starts Alive; consecutive failures eject
// it to Dead; a dead peer earns a single trial once its jittered
// backoff expires, and a trial success moves it to Probation, where a
// few clean successes re-admit it fully (and one failure sends it
// straight back to Dead with a doubled backoff).
const (
	StateAlive     = "alive"
	StateDead      = "dead"
	StateProbation = "probation"
)

// HealthConfig parameterizes the per-peer health tracker.
type HealthConfig struct {
	// FailThreshold is the consecutive-failure count that ejects an
	// alive peer (default 3).
	FailThreshold int
	// BackoffBase is the first post-ejection retry delay (default
	// 500ms); each further ejection doubles it up to BackoffMax
	// (default 30s). The applied delay is jittered uniformly in
	// [0.5x, 1.5x) so a fleet that ejected a peer together does not
	// retry it in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbationSuccesses is how many consecutive successes a
	// probationary peer needs to be fully re-admitted (default 2).
	ProbationSuccesses int
	// Seed makes the backoff jitter deterministic (0 seeds from the
	// base delay so behavior is still reproducible by default).
	Seed int64
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.ProbationSuccesses <= 0 {
		c.ProbationSuccesses = 2
	}
	if c.Seed == 0 {
		c.Seed = int64(c.BackoffBase)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Health tracks per-peer liveness from observed request outcomes. It is
// passive by design: the server reports successes and failures from the
// traffic it already sends (peer-fill legs, repair pushes, sync pulls),
// and an optional active prober (see Membership.StartProber) reports
// probe outcomes through the same two methods. Eligible is the read
// side, called on the request hot path — it takes a read lock, touches
// one map entry and allocates nothing.
type Health struct {
	cfg HealthConfig

	mu    sync.RWMutex
	peers map[string]*peerHealth
	rng   *rand.Rand // guarded by mu
}

type peerHealth struct {
	state     string
	fails     int // consecutive failures while alive
	successes int // consecutive successes while on probation
	ejections int // lifetime ejections; drives the backoff exponent
	retryAt   time.Time
}

// PeerHealth is one peer's externally visible health snapshot.
type PeerHealth struct {
	ID        string
	State     string
	Ejections int
	RetryAt   time.Time
}

// NewHealth creates a tracker. A nil *Health is valid everywhere and
// reports every peer eligible — single-node and health-disabled
// configurations need no branches at call sites.
func NewHealth(cfg HealthConfig) *Health {
	cfg = cfg.withDefaults()
	return &Health{
		cfg:   cfg,
		peers: make(map[string]*peerHealth),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Eligible reports whether a peer should receive traffic right now:
// alive or probationary peers always, dead peers only once their
// jittered backoff has expired (the trial request whose outcome decides
// re-admission). Unknown peers are eligible — health state is earned,
// not preassigned.
func (h *Health) Eligible(id string) bool {
	if h == nil {
		return true
	}
	h.mu.RLock()
	p, ok := h.peers[id]
	eligible := !ok || p.state != StateDead || !h.cfg.Now().Before(p.retryAt)
	h.mu.RUnlock()
	return eligible
}

// State returns a peer's current state (unknown peers are alive).
func (h *Health) State(id string) string {
	if h == nil {
		return StateAlive
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if p, ok := h.peers[id]; ok {
		return p.state
	}
	return StateAlive
}

// ReportSuccess records a successful interaction with a peer. A clean
// artifact miss counts: the peer answered, so it is healthy.
func (h *Health) ReportSuccess(id string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(id)
	switch p.state {
	case StateDead:
		// The post-backoff trial succeeded: on probation, one success in.
		p.state = StateProbation
		p.successes = 1
		p.fails = 0
	case StateProbation:
		p.successes++
	default:
		p.fails = 0
		return
	}
	if p.successes >= h.cfg.ProbationSuccesses {
		p.state = StateAlive
		p.fails, p.successes = 0, 0
	}
}

// ReportFailure records a failed interaction with a peer. FailThreshold
// consecutive failures eject an alive peer; a probationary (or trialed
// dead) peer goes straight back to Dead with a doubled, jittered
// backoff.
func (h *Health) ReportFailure(id string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(id)
	switch p.state {
	case StateAlive:
		p.fails++
		if p.fails >= h.cfg.FailThreshold {
			h.eject(p)
		}
	default: // probation, or a dead peer's trial
		h.eject(p)
	}
}

// eject moves a peer to Dead and schedules its next trial. Caller holds
// the write lock.
func (h *Health) eject(p *peerHealth) {
	p.state = StateDead
	p.fails, p.successes = 0, 0
	p.ejections++
	backoff := h.cfg.BackoffBase << uint(min(p.ejections-1, 16))
	if backoff > h.cfg.BackoffMax || backoff <= 0 {
		backoff = h.cfg.BackoffMax
	}
	// Jitter in [0.5x, 1.5x): deterministic under Seed.
	jittered := time.Duration((0.5 + h.rng.Float64()) * float64(backoff))
	p.retryAt = h.cfg.Now().Add(jittered)
}

// peer returns (creating if needed) a peer's record. Caller holds the
// write lock.
func (h *Health) peer(id string) *peerHealth {
	p, ok := h.peers[id]
	if !ok {
		p = &peerHealth{state: StateAlive}
		h.peers[id] = p
	}
	return p
}

// SetPeers reconciles the tracked set with the current membership:
// departed peers are forgotten (a removed peer that later rejoins
// starts fresh), new peers start alive.
func (h *Health) SetPeers(ids []string) {
	if h == nil {
		return
	}
	keep := make(map[string]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.peers {
		if !keep[id] {
			delete(h.peers, id)
		}
	}
	for _, id := range ids {
		if _, ok := h.peers[id]; !ok {
			h.peers[id] = &peerHealth{state: StateAlive}
		}
	}
}

// Due returns the dead peers whose backoff has expired — the active
// prober's work list.
func (h *Health) Due() []string {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	now := h.cfg.Now()
	var due []string
	for id, p := range h.peers {
		if p.state == StateDead && !now.Before(p.retryAt) {
			due = append(due, id)
		}
	}
	return due
}

// Snapshot returns every tracked peer's health (metrics, debugging).
func (h *Health) Snapshot() []PeerHealth {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]PeerHealth, 0, len(h.peers))
	for id, p := range h.peers {
		out = append(out, PeerHealth{ID: id, State: p.state, Ejections: p.ejections, RetryAt: p.retryAt})
	}
	return out
}

// Counts returns how many tracked peers are in each state (alive
// includes probation: both receive traffic).
func (h *Health) Counts() (alive, dead int) {
	if h == nil {
		return 0, 0
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, p := range h.peers {
		if p.state == StateDead {
			dead++
		} else {
			alive++
		}
	}
	return alive, dead
}
