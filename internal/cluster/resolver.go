package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Source is a refreshable membership source: where the peer list comes
// from when it can change at runtime. Resolve returns the current peer
// set or an error, in which case the previously resolved set stays in
// effect (a flapping DNS server or a half-written peers file must never
// empty the ring).
//
// Source is the dynamic counterpart of Resolver: a Resolver answers
// "what is the membership" infallibly from whatever it last learned,
// while a Source is allowed to fail per refresh. Membership adapts a
// Source into a Resolver by polling it and swapping rings atomically.
type Source interface {
	Resolve() ([]Peer, error)
}

// StaticSource is a fixed-membership Source (and the Resolve analogue
// of Static). It never fails and never changes.
type StaticSource []Peer

// Resolve implements Source.
func (s StaticSource) Resolve() ([]Peer, error) { return s, nil }

// FileSource resolves membership from a peers file, re-read on every
// Resolve — the file-watch backend behind the -peers-file flag. The
// format is one peer per line, either "addr" or "id=addr" (the same
// element syntax as ParsePeers); blank lines and #-comments are
// ignored, and commas may separate several peers on one line so a
// -peers value can be pasted in verbatim.
//
// Operators edit the file in place (or atomically rename over it); the
// next poll picks the change up. A read or parse error leaves the
// current membership in effect.
type FileSource struct {
	Path string
}

// Resolve implements Source.
func (f FileSource) Resolve() ([]Peer, error) {
	data, err := os.ReadFile(f.Path)
	if err != nil {
		return nil, fmt.Errorf("cluster: peers file: %w", err)
	}
	var elems []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		elems = append(elems, line)
	}
	peers, err := ParsePeers(strings.Join(elems, ","))
	if err != nil {
		return nil, fmt.Errorf("cluster: peers file %s: %w", f.Path, err)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: peers file %s lists no peers", f.Path)
	}
	return peers, nil
}

// DNSSource resolves membership from DNS SRV records — the -peers-dns
// backend. Each SRV target:port becomes one peer with ID "host:port"
// and Addr "<scheme>://host:port", so a headless-service record set
// maps straight onto ring identities that stay stable as long as the
// pod names do.
type DNSSource struct {
	// Name is the full SRV name to look up, e.g.
	// "_ltspd._tcp.ltspd.cluster.local".
	Name string
	// Scheme prefixes peer addresses (default "http").
	Scheme string
	// Timeout bounds one lookup (default 5s).
	Timeout time.Duration
	// Lookup overrides the DNS client (tests inject fakes). Nil uses
	// net.DefaultResolver with Name passed verbatim.
	Lookup func(ctx context.Context, name string) ([]*net.SRV, error)
}

// Resolve implements Source.
func (d DNSSource) Resolve() ([]Peer, error) {
	to := d.Timeout
	if to <= 0 {
		to = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), to)
	defer cancel()
	lookup := d.Lookup
	if lookup == nil {
		lookup = func(ctx context.Context, name string) ([]*net.SRV, error) {
			_, srvs, err := net.DefaultResolver.LookupSRV(ctx, "", "", name)
			return srvs, err
		}
	}
	srvs, err := lookup(ctx, d.Name)
	if err != nil {
		return nil, fmt.Errorf("cluster: SRV %s: %w", d.Name, err)
	}
	if len(srvs) == 0 {
		return nil, fmt.Errorf("cluster: SRV %s: no records", d.Name)
	}
	scheme := d.Scheme
	if scheme == "" {
		scheme = "http"
	}
	peers := make([]Peer, 0, len(srvs))
	seen := make(map[string]bool, len(srvs))
	for _, srv := range srvs {
		host := strings.TrimSuffix(srv.Target, ".")
		id := net.JoinHostPort(host, strconv.Itoa(int(srv.Port)))
		if seen[id] {
			continue
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, Addr: scheme + "://" + id})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers, nil
}
