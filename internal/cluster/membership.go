package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MembershipConfig parameterizes a Membership.
type MembershipConfig struct {
	// Source supplies the peer list (required).
	Source Source
	// Self is the local peer; it is always part of the membership even
	// when the Source omits it (a node removed from its own discovery
	// record keeps owning its arcs until it is shut down, rather than
	// treating every key as peer-owned). When the Source does list
	// Self's ID, the resolved entry wins.
	Self Peer
	// VNodes is the virtual-node count per peer (<= 0 selects
	// DefaultVNodes). All nodes must agree on it.
	VNodes int
	// Interval is the Source poll period for Start (default 3s).
	Interval time.Duration
	// Health, when non-nil, is reconciled with the peer set on every
	// swap and driven by the prober.
	Health *Health
	// OnChange, when non-nil, runs after each ring swap with the new
	// ring (the server pokes its anti-entropy loop from here). It is
	// called from whatever goroutine performed the Refresh, never
	// concurrently with itself.
	OnChange func(*Ring)
	// Logger receives membership events; nil discards them.
	Logger *slog.Logger
}

// Membership maintains the current consistent-hash ring over a dynamic
// peer Source. Ring updates are atomic pointer swaps: readers load the
// current immutable Ring with one atomic read and keep using that
// snapshot for the whole operation (a hedged peer fill never sees a
// half-updated ring, and an in-flight fill against a since-removed peer
// simply completes against its snapshot).
//
// Membership itself implements Resolver over the current ring's peers.
type Membership struct {
	cfg  MembershipConfig
	ring atomic.Pointer[Ring]

	swaps         atomic.Uint64 // completed ring swaps (not counting the initial build)
	resolveErrors atomic.Uint64

	changeMu sync.Mutex // serializes Refresh (and so OnChange)

	stopOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup
}

// NewMembership builds the initial ring (resolving once, falling back
// to just Self if the first resolve fails — the poller will heal it)
// and returns the membership. Call Start to begin polling, StartProber
// to begin active health probes, and Close to stop both.
func NewMembership(cfg MembershipConfig) *Membership {
	if cfg.Interval <= 0 {
		cfg.Interval = 3 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	m := &Membership{cfg: cfg, stop: make(chan struct{})}
	peers, err := m.resolve()
	if err != nil {
		m.cfg.Logger.Warn("cluster: initial membership resolve failed; starting with self only", "err", err)
		peers = []Peer{cfg.Self}
	}
	ring := New(Static(peers), cfg.VNodes)
	m.ring.Store(ring)
	m.reconcileHealth(ring)
	return m
}

// Ring returns the current ring snapshot: one atomic load, safe to use
// for the whole of an operation.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// Peers implements Resolver over the current ring.
func (m *Membership) Peers() []Peer { return m.Ring().Peers() }

// Swaps returns how many ring swaps have been applied since the initial
// build.
func (m *Membership) Swaps() uint64 { return m.swaps.Load() }

// ResolveErrors returns how many Source refreshes have failed (each
// leaves the previous membership in effect).
func (m *Membership) ResolveErrors() uint64 { return m.resolveErrors.Load() }

// resolve asks the Source and folds Self in.
func (m *Membership) resolve() ([]Peer, error) {
	peers, err := m.cfg.Source.Resolve()
	if err != nil {
		return nil, err
	}
	out := append([]Peer(nil), peers...)
	hasSelf := false
	for _, p := range out {
		if p.ID == m.cfg.Self.ID {
			hasSelf = true
			break
		}
	}
	if !hasSelf && m.cfg.Self.ID != "" {
		out = append(out, m.cfg.Self)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Refresh re-resolves membership and, when the peer set changed,
// atomically swaps in a freshly built ring. It reports whether a swap
// happened. A resolve error keeps the current ring and returns the
// error.
func (m *Membership) Refresh() (bool, error) {
	m.changeMu.Lock()
	defer m.changeMu.Unlock()
	peers, err := m.resolve()
	if err != nil {
		m.resolveErrors.Add(1)
		return false, err
	}
	if samePeers(m.Ring().Peers(), peers) {
		return false, nil
	}
	ring := New(Static(peers), m.cfg.VNodes)
	m.ring.Store(ring)
	m.swaps.Add(1)
	m.reconcileHealth(ring)
	m.cfg.Logger.Info("cluster: membership changed", "peers", len(peers), "swaps", m.swaps.Load())
	if m.cfg.OnChange != nil {
		m.cfg.OnChange(ring)
	}
	return true, nil
}

func (m *Membership) reconcileHealth(ring *Ring) {
	if m.cfg.Health == nil {
		return
	}
	peers := ring.Peers()
	ids := make([]string, 0, len(peers))
	for _, p := range peers {
		if p.ID != m.cfg.Self.ID {
			ids = append(ids, p.ID)
		}
	}
	m.cfg.Health.SetPeers(ids)
}

// samePeers reports whether two ID-sorted peer slices are equal as
// (ID, Addr) sets.
func samePeers(a, b []Peer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start begins polling the Source every Interval, swapping the ring on
// change. It is a no-op for a second call.
func (m *Membership) Start() {
	m.done.Add(1)
	go func() {
		defer m.done.Done()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := m.Refresh(); err != nil {
					m.cfg.Logger.Warn("cluster: membership refresh failed", "err", err)
				}
			case <-m.stop:
				return
			}
		}
	}()
}

// ProbeFunc checks one peer's liveness; nil errors are successes.
type ProbeFunc func(ctx context.Context, p Peer) error

// HTTPProbe returns a ProbeFunc that GETs <addr>/healthz with the given
// client — the default active probe.
func HTTPProbe(client *http.Client) ProbeFunc {
	if client == nil {
		client = &http.Client{}
	}
	return func(ctx context.Context, p Peer) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.Addr+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("probe %s: status %d", p.ID, resp.StatusCode)
		}
		return nil
	}
}

// StartProber begins probing dead peers whose backoff has expired every
// interval, reporting outcomes into Health. Probes spend the backoff
// trial on a cheap /healthz round trip instead of a client request, so
// a recovered peer is back on probation before any request has to
// gamble on it.
func (m *Membership) StartProber(interval, timeout time.Duration, probe ProbeFunc) {
	if m.cfg.Health == nil || interval <= 0 {
		return
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if probe == nil {
		probe = HTTPProbe(nil)
	}
	m.done.Add(1)
	go func() {
		defer m.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.probeDue(timeout, probe)
			case <-m.stop:
				return
			}
		}
	}()
}

// probeDue probes every due dead peer once, synchronously.
func (m *Membership) probeDue(timeout time.Duration, probe ProbeFunc) {
	due := m.cfg.Health.Due()
	if len(due) == 0 {
		return
	}
	ring := m.Ring()
	byID := make(map[string]Peer, ring.Len())
	for _, p := range ring.Peers() {
		byID[p.ID] = p
	}
	for _, id := range due {
		p, ok := byID[id]
		if !ok {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := probe(ctx, p)
		cancel()
		if err != nil {
			m.cfg.Health.ReportFailure(id)
			m.cfg.Logger.Debug("cluster: probe failed", "peer", id, "err", err)
		} else {
			m.cfg.Health.ReportSuccess(id)
			m.cfg.Logger.Info("cluster: dead peer answered probe", "peer", id, "state", m.cfg.Health.State(id))
		}
	}
}

// Close stops the poller and prober and waits for them to exit. Safe to
// call more than once and without Start.
func (m *Membership) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.done.Wait()
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler arrived
// after Go 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
