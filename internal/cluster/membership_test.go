package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFileSourceResolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers")
	content := "# fleet\n a=http://h1:1 , b=http://h2:2 # trailing comment\n\nhttp://h3:3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	peers, err := FileSource{Path: path}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{{"a", "http://h1:1"}, {"b", "http://h2:2"}, {"http://h3:3", "http://h3:3"}}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers %v, want %d", len(peers), peers, len(want))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %v, want %v", i, peers[i], want[i])
		}
	}
}

func TestFileSourceErrors(t *testing.T) {
	if _, err := (FileSource{Path: filepath.Join(t.TempDir(), "missing")}).Resolve(); err == nil {
		t.Error("missing file: want error")
	}
	path := filepath.Join(t.TempDir(), "peers")
	os.WriteFile(path, []byte("a=http://h1:1\na=http://h2:2\n"), 0o644)
	if _, err := (FileSource{Path: path}).Resolve(); err == nil {
		t.Error("duplicate id: want error")
	}
	os.WriteFile(path, []byte("# only comments\n"), 0o644)
	if _, err := (FileSource{Path: path}).Resolve(); err == nil {
		t.Error("empty peer list: want error")
	}
}

func TestDNSSourceResolve(t *testing.T) {
	src := DNSSource{
		Name: "_ltspd._tcp.example",
		Lookup: func(ctx context.Context, name string) ([]*net.SRV, error) {
			if name != "_ltspd._tcp.example" {
				t.Errorf("lookup name = %q", name)
			}
			return []*net.SRV{
				{Target: "node-b.example.", Port: 8002},
				{Target: "node-a.example.", Port: 8001},
				{Target: "node-a.example.", Port: 8001}, // duplicate record
			}, nil
		},
	}
	peers, err := src.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers %v, want 2", len(peers), peers)
	}
	if peers[0].ID != "node-a.example:8001" || peers[0].Addr != "http://node-a.example:8001" {
		t.Errorf("peer 0 = %v", peers[0])
	}
	if peers[1].ID != "node-b.example:8002" {
		t.Errorf("peer 1 = %v", peers[1])
	}
}

func TestMembershipRefreshSwapsRing(t *testing.T) {
	var mu sync.Mutex
	peers := []Peer{{"a", "http://a"}, {"b", "http://b"}}
	src := sourceFunc(func() ([]Peer, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]Peer(nil), peers...), nil
	})
	var changes int
	m := NewMembership(MembershipConfig{
		Source:   src,
		Self:     Peer{ID: "a", Addr: "http://a"},
		OnChange: func(*Ring) { changes++ },
	})
	defer m.Close()
	if m.Ring().Len() != 2 {
		t.Fatalf("initial ring has %d peers, want 2", m.Ring().Len())
	}
	if changed, err := m.Refresh(); err != nil || changed {
		t.Fatalf("no-op refresh: changed=%v err=%v", changed, err)
	}
	mu.Lock()
	peers = append(peers, Peer{"c", "http://c"})
	mu.Unlock()
	changed, err := m.Refresh()
	if err != nil || !changed {
		t.Fatalf("grow refresh: changed=%v err=%v", changed, err)
	}
	if m.Ring().Len() != 3 || m.Swaps() != 1 || changes != 1 {
		t.Fatalf("after grow: len=%d swaps=%d changes=%d", m.Ring().Len(), m.Swaps(), changes)
	}
}

func TestMembershipKeepsSelfAndOldRingOnError(t *testing.T) {
	fail := false
	var mu sync.Mutex
	src := sourceFunc(func() ([]Peer, error) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return nil, fmt.Errorf("discovery down")
		}
		return []Peer{{"b", "http://b"}}, nil // omits self
	})
	m := NewMembership(MembershipConfig{Source: src, Self: Peer{ID: "a", Addr: "http://a"}})
	defer m.Close()
	if m.Ring().Len() != 2 || !ringHas(m.Ring(), "a") {
		t.Fatalf("self not folded into membership: %v", m.Ring().Peers())
	}
	old := m.Ring()
	mu.Lock()
	fail = true
	mu.Unlock()
	if _, err := m.Refresh(); err == nil {
		t.Fatal("want resolve error")
	}
	if m.Ring() != old {
		t.Error("failed resolve must keep the previous ring")
	}
	if m.ResolveErrors() != 1 {
		t.Errorf("resolve errors = %d, want 1", m.ResolveErrors())
	}
}

// sourceFunc adapts a function to Source.
type sourceFunc func() ([]Peer, error)

func (f sourceFunc) Resolve() ([]Peer, error) { return f() }

// TestRingSwapAtomicity is the ring-swap property test: concurrent
// readers racing membership swaps must only ever observe complete
// membership versions — every Owners result is consistent with exactly
// one resolved peer set, never a blend of two.
func TestRingSwapAtomicity(t *testing.T) {
	versions := [][]Peer{
		{{"a", "ua"}, {"b", "ub"}},
		{{"a", "ua"}, {"b", "ub"}, {"c", "uc"}},
		{{"a", "ua"}, {"c", "uc"}},
		{{"a", "ua"}, {"b", "ub"}, {"c", "uc"}, {"d", "ud"}},
	}
	var mu sync.Mutex
	cur := 0
	src := sourceFunc(func() ([]Peer, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]Peer(nil), versions[cur]...), nil
	})
	m := NewMembership(MembershipConfig{Source: src, Self: Peer{ID: "a", Addr: "ua"}, VNodes: 16})
	defer m.Close()

	// Precompute the legal peer-set fingerprints.
	legal := make(map[string]bool)
	for _, v := range versions {
		legal[fingerprint(New(Static(v), 16).Peers())] = true
	}

	stop := make(chan struct{})
	errs := make(chan string, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ring := m.Ring() // one snapshot for the whole "operation"
				fp := fingerprint(ring.Peers())
				if !legal[fp] {
					select {
					case errs <- "illegal membership observed: " + fp:
					default:
					}
					return
				}
				key := fmt.Sprintf("key-%d-%d", g, i)
				owners := ring.Owners(key, 2)
				for _, o := range owners {
					if !ringHas(ring, o.ID) {
						select {
						case errs <- "owner outside ring snapshot: " + o.ID:
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		mu.Lock()
		cur = (cur + 1) % len(versions)
		mu.Unlock()
		if _, err := m.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	if m.Swaps() == 0 {
		t.Fatal("no swaps happened; the property was not exercised")
	}
}

func fingerprint(peers []Peer) string {
	s := ""
	for _, p := range peers {
		s += p.ID + ","
	}
	return s
}

func ringHas(r *Ring, id string) bool {
	for _, p := range r.Peers() {
		if p.ID == id {
			return true
		}
	}
	return false
}

// TestMembershipMinimalMovement: swapping one peer out moves only that
// peer's arcs (quick-checked over random keys).
func TestMembershipMinimalMovement(t *testing.T) {
	before := New(Static([]Peer{{"a", "ua"}, {"b", "ub"}, {"c", "uc"}}), 64)
	after := New(Static([]Peer{{"a", "ua"}, {"b", "ub"}, {"d", "ud"}}), 64)
	check := func(k string) bool {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		// Ownership may only change when c or d is involved.
		return ob.ID == oa.ID || ob.ID == "c" || oa.ID == "d"
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHealthEjectionAndProbation(t *testing.T) {
	now := time.Unix(1000, 0)
	h := NewHealth(HealthConfig{
		FailThreshold:      3,
		BackoffBase:        time.Second,
		BackoffMax:         time.Minute,
		ProbationSuccesses: 2,
		Seed:               42,
		Now:                func() time.Time { return now },
	})
	if !h.Eligible("p") || h.State("p") != StateAlive {
		t.Fatal("unknown peer must start alive and eligible")
	}
	h.ReportFailure("p")
	h.ReportFailure("p")
	if !h.Eligible("p") {
		t.Fatal("below threshold must stay eligible")
	}
	h.ReportSuccess("p")
	h.ReportFailure("p")
	h.ReportFailure("p")
	if !h.Eligible("p") {
		t.Fatal("success must reset the consecutive-failure count")
	}
	h.ReportFailure("p")
	if h.State("p") != StateDead {
		t.Fatalf("state = %s, want dead after 3 consecutive failures", h.State("p"))
	}
	if h.Eligible("p") {
		t.Fatal("freshly dead peer must be ineligible")
	}
	alive, dead := h.Counts()
	if alive != 0 || dead != 1 {
		t.Fatalf("counts = %d/%d, want 0 alive 1 dead", alive, dead)
	}

	// Backoff expiry earns exactly one trial.
	now = now.Add(2 * time.Second) // past 1.5x max jitter of the base backoff
	if !h.Eligible("p") {
		t.Fatal("post-backoff dead peer must earn a trial")
	}
	if len(h.Due()) != 1 {
		t.Fatalf("due = %v, want [p]", h.Due())
	}
	// Trial fails: dead again, doubled backoff.
	h.ReportFailure("p")
	if h.Eligible("p") {
		t.Fatal("failed trial must re-eject immediately")
	}
	now = now.Add(time.Second) // 1s: within the doubled (>=1s jittered low bound) window
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Ejections != 2 {
		t.Fatalf("snapshot = %+v, want 2 ejections", snap)
	}

	// Let the second backoff expire; a success starts probation, a second
	// re-admits fully.
	now = now.Add(4 * time.Second)
	if !h.Eligible("p") {
		t.Fatal("second backoff must expire by +4s (max 1.5x of 2s)")
	}
	h.ReportSuccess("p")
	if h.State("p") != StateProbation || !h.Eligible("p") {
		t.Fatalf("state = %s, want probation (eligible)", h.State("p"))
	}
	h.ReportSuccess("p")
	if h.State("p") != StateAlive {
		t.Fatalf("state = %s, want alive after probation successes", h.State("p"))
	}
}

func TestHealthProbationFailureDoublesBackoff(t *testing.T) {
	now := time.Unix(0, 0)
	h := NewHealth(HealthConfig{
		FailThreshold: 1, BackoffBase: time.Second, BackoffMax: time.Hour,
		ProbationSuccesses: 2, Seed: 7, Now: func() time.Time { return now },
	})
	h.ReportFailure("p") // ejection 1
	now = now.Add(2 * time.Second)
	h.ReportSuccess("p") // probation
	h.ReportFailure("p") // ejection 2: backoff 2s, jittered [1s, 3s)
	if h.Eligible("p") {
		t.Fatal("probation failure must eject immediately")
	}
	now = now.Add(3 * time.Second)
	if !h.Eligible("p") {
		t.Fatal("second backoff must be at most 3s")
	}
}

func TestHealthSetPeersPrunes(t *testing.T) {
	h := NewHealth(HealthConfig{FailThreshold: 1, Seed: 1})
	h.ReportFailure("gone")
	if h.State("gone") != StateDead {
		t.Fatal("setup: want dead")
	}
	h.SetPeers([]string{"kept"})
	if h.State("gone") != StateAlive {
		t.Error("departed peer must be forgotten (fresh on rejoin)")
	}
	alive, dead := h.Counts()
	if alive != 1 || dead != 0 {
		t.Errorf("counts = %d/%d, want 1/0", alive, dead)
	}
}

func TestHealthEligibleAllocs(t *testing.T) {
	h := NewHealth(HealthConfig{Seed: 1})
	h.SetPeers([]string{"a", "b", "c"})
	h.ReportFailure("b")
	m := NewMembership(MembershipConfig{
		Source: StaticSource{{ID: "a", Addr: "ua"}, {ID: "b", Addr: "ub"}},
		Self:   Peer{ID: "a", Addr: "ua"},
		Health: h,
	})
	defer m.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		ring := m.Ring()
		_ = ring.Len()
		if !h.Eligible("a") || !h.Eligible("b") {
			t.Fatal("unexpected ineligible")
		}
	})
	if allocs != 0 {
		t.Errorf("hot-path health check allocates %v per run, want 0", allocs)
	}
}

func TestMembershipPollerAndProber(t *testing.T) {
	var mu sync.Mutex
	peers := []Peer{{"a", "ua"}, {"b", "ub"}}
	src := sourceFunc(func() ([]Peer, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]Peer(nil), peers...), nil
	})
	now := time.Unix(0, 0)
	var nowMu sync.Mutex
	h := NewHealth(HealthConfig{FailThreshold: 1, BackoffBase: time.Millisecond,
		ProbationSuccesses: 1, Seed: 3,
		Now: func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }})
	m := NewMembership(MembershipConfig{
		Source: src, Self: Peer{ID: "a", Addr: "ua"}, Health: h,
		Interval: 5 * time.Millisecond,
	})
	m.Start()
	probed := make(chan string, 16)
	m.StartProber(5*time.Millisecond, time.Second, func(ctx context.Context, p Peer) error {
		probed <- p.ID
		return nil
	})
	defer m.Close()

	mu.Lock()
	peers = append(peers, Peer{"c", "uc"})
	mu.Unlock()
	deadline := time.After(2 * time.Second)
	for m.Ring().Len() != 3 {
		select {
		case <-deadline:
			t.Fatal("poller never picked up the membership change")
		case <-time.After(time.Millisecond):
		}
	}

	h.ReportFailure("b")
	nowMu.Lock()
	now = now.Add(time.Second) // past the jittered backoff: b is due
	nowMu.Unlock()
	select {
	case id := <-probed:
		if id != "b" {
			t.Fatalf("probed %q, want b", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("prober never probed the due peer")
	}
	// The probe success must re-admit b (ProbationSuccesses 1).
	deadline = time.After(2 * time.Second)
	for h.State("b") != StateAlive {
		select {
		case <-deadline:
			t.Fatalf("state = %s, want alive after probe success", h.State("b"))
		case <-time.After(time.Millisecond):
		}
	}
}
