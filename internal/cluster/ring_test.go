package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func peersN(n int) []Peer {
	out := make([]Peer, n)
	for i := range out {
		out[i] = Peer{ID: fmt.Sprintf("http://node-%d:8347", i), Addr: fmt.Sprintf("http://node-%d:8347", i)}
	}
	return out
}

func keysN(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", rng.Uint64())
	}
	return out
}

// TestOwnershipDeterministic: two independently built rings over the
// same membership (in different list orders) agree on every owner and
// every replica set — ownership is a pure function of the peer set.
func TestOwnershipDeterministic(t *testing.T) {
	peers := peersN(5)
	shuffled := append([]Peer(nil), peers...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a := New(Static(peers), 0)
	b := New(Static(shuffled), 0)
	for _, key := range keysN(500, 1) {
		oa := a.Owners(key, 3)
		ob := b.Owners(key, 3)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("rings over the same membership disagree on %s: %v vs %v", key[:8], oa, ob)
		}
	}
}

// TestReplicaSets: table-driven checks of replica-set selection.
func TestReplicaSets(t *testing.T) {
	cases := []struct {
		name     string
		peers    int
		n        int
		wantLen  int
		distinct bool
	}{
		{"single peer", 1, 1, 1, true},
		{"replication beyond cluster", 2, 5, 2, true},
		{"three of five", 5, 3, 3, true},
		{"zero replication", 5, 0, 0, true},
		{"empty ring", 0, 2, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New(Static(peersN(tc.peers)), 0)
			for _, key := range keysN(100, 2) {
				owners := r.Owners(key, tc.n)
				if len(owners) != tc.wantLen {
					t.Fatalf("Owners(%s, %d) returned %d peers, want %d", key[:8], tc.n, len(owners), tc.wantLen)
				}
				seen := make(map[string]bool)
				for _, p := range owners {
					if seen[p.ID] {
						t.Fatalf("replica set for %s repeats peer %s", key[:8], p.ID)
					}
					seen[p.ID] = true
				}
			}
		})
	}
}

// TestOwnersPrefixStable: the n-replica set is a prefix of the
// (n+1)-replica set — growing replication never reshuffles existing
// replicas, it only appends.
func TestOwnersPrefixStable(t *testing.T) {
	r := New(Static(peersN(6)), 0)
	for _, key := range keysN(200, 3) {
		prev := []Peer{}
		for n := 1; n <= 4; n++ {
			cur := r.Owners(key, n)
			if !reflect.DeepEqual(cur[:len(prev)], prev) {
				t.Fatalf("Owners(%s, %d) = %v is not an extension of %v", key[:8], n, cur, prev)
			}
			prev = cur
		}
	}
}

// TestMinimalMovementOnJoin: adding one peer to an n-peer ring moves
// roughly 1/(n+1) of the keys and NEVER moves a key between two peers
// that are in both memberships — every moved key moves TO the joiner.
func TestMinimalMovementOnJoin(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		t.Run(fmt.Sprintf("%d_peers", n), func(t *testing.T) {
			old := New(Static(peersN(n)), 0)
			grown := New(Static(peersN(n+1)), 0) // peersN(n+1) = peersN(n) + one joiner
			joiner := fmt.Sprintf("http://node-%d:8347", n)
			keys := keysN(4000, 4)
			moved := 0
			for _, key := range keys {
				a, _ := old.Owner(key)
				b, _ := grown.Owner(key)
				if a.ID == b.ID {
					continue
				}
				moved++
				if b.ID != joiner {
					t.Fatalf("key %s moved %s -> %s, neither of which is the joiner", key[:8], a.ID, b.ID)
				}
			}
			frac := float64(moved) / float64(len(keys))
			ideal := 1 / float64(n+1)
			// Virtual-node placement is statistical; allow 2x the ideal
			// share before calling the movement non-minimal.
			if frac > 2*ideal {
				t.Fatalf("join moved %.1f%% of keys, ideal %.1f%% (bound %.1f%%)",
					frac*100, ideal*100, 2*ideal*100)
			}
			if moved == 0 {
				t.Fatal("join moved no keys at all — joiner owns nothing")
			}
		})
	}
}

// TestMinimalMovementOnLeave: removing a peer reassigns only the keys it
// owned; keys owned by surviving peers do not move.
func TestMinimalMovementOnLeave(t *testing.T) {
	peers := peersN(5)
	full := New(Static(peers), 0)
	leaver := peers[2].ID
	shrunk := New(Static(append(append([]Peer{}, peers[:2]...), peers[3:]...)), 0)
	for _, key := range keysN(4000, 5) {
		a, _ := full.Owner(key)
		b, _ := shrunk.Owner(key)
		if a.ID == leaver {
			if b.ID == leaver {
				t.Fatalf("key %s still owned by departed peer", key[:8])
			}
			continue
		}
		if a.ID != b.ID {
			t.Fatalf("key %s owned by surviving peer %s moved to %s on an unrelated leave", key[:8], a.ID, b.ID)
		}
	}
}

// TestPropertyRandomMemberships: seeded property test — random peer
// sets and random single join/leave steps uphold the core invariants:
// deterministic ownership, distinct full replica sets, minimal movement
// direction (joins only pull keys to the joiner; leaves only push keys
// off the leaver), and rough balance of the primary assignment.
func TestPropertyRandomMemberships(t *testing.T) {
	rng := rand.New(rand.NewSource(20080608))
	for round := 0; round < 20; round++ {
		n := 2 + rng.Intn(8)
		peers := make([]Peer, n)
		for i := range peers {
			id := fmt.Sprintf("http://p%d-%d:%d", round, i, 8000+rng.Intn(1000))
			peers[i] = Peer{ID: id, Addr: id}
		}
		ring := New(Static(peers), 0)
		keys := keysN(2000, int64(round))

		// Balance: with 128 vnodes the max primary share should be well
		// under 3x the fair share for these sizes.
		counts := make(map[string]int)
		for _, key := range keys {
			o, ok := ring.Owner(key)
			if !ok {
				t.Fatal("non-empty ring returned no owner")
			}
			counts[o.ID]++
		}
		fair := float64(len(keys)) / float64(n)
		for id, c := range counts {
			if float64(c) > 3*fair {
				t.Fatalf("round %d: peer %s owns %d of %d keys (fair %.0f)", round, id, c, len(keys), fair)
			}
		}

		if rng.Intn(2) == 0 {
			// Join.
			jid := fmt.Sprintf("http://joiner-%d:9000", round)
			grown := New(Static(append(append([]Peer{}, peers...), Peer{ID: jid, Addr: jid})), 0)
			for _, key := range keys {
				a, _ := ring.Owner(key)
				b, _ := grown.Owner(key)
				if a.ID != b.ID && b.ID != jid {
					t.Fatalf("round %d: join moved key between survivors (%s -> %s)", round, a.ID, b.ID)
				}
			}
		} else {
			// Leave.
			li := rng.Intn(n)
			rest := append(append([]Peer{}, peers[:li]...), peers[li+1:]...)
			shrunk := New(Static(rest), 0)
			for _, key := range keys {
				a, _ := ring.Owner(key)
				b, _ := shrunk.Owner(key)
				if a.ID != peers[li].ID && a.ID != b.ID {
					t.Fatalf("round %d: leave moved key owned by a survivor (%s -> %s)", round, a.ID, b.ID)
				}
			}
		}
	}
}

func TestParsePeers(t *testing.T) {
	cases := []struct {
		in      string
		want    []Peer
		wantErr bool
	}{
		{"", nil, false},
		{"http://a:1", []Peer{{ID: "http://a:1", Addr: "http://a:1"}}, false},
		{"http://a:1, http://b:2", []Peer{
			{ID: "http://a:1", Addr: "http://a:1"},
			{ID: "http://b:2", Addr: "http://b:2"},
		}, false},
		{"n1=http://a:1,n2=http://b:2", []Peer{
			{ID: "n1", Addr: "http://a:1"},
			{ID: "n2", Addr: "http://b:2"},
		}, false},
		{"n1=,", nil, true},
		{"http://a:1,http://a:1", nil, true}, // duplicate ID
	}
	for _, tc := range cases {
		got, err := ParsePeers(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePeers(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePeers(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePeers(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIsOwner(t *testing.T) {
	r := New(Static(peersN(4)), 0)
	key := keysN(1, 9)[0]
	owners := r.Owners(key, 2)
	for _, p := range owners {
		if !r.IsOwner(p.ID, key, 2) {
			t.Fatalf("IsOwner false for replica %s", p.ID)
		}
	}
	if r.IsOwner("http://nobody:1", key, 2) {
		t.Fatal("IsOwner true for a peer not on the ring")
	}
	inSet := make(map[string]bool)
	for _, p := range owners {
		inSet[p.ID] = true
	}
	for _, p := range r.Peers() {
		if !inSet[p.ID] && r.IsOwner(p.ID, key, 2) {
			t.Fatalf("IsOwner true for non-replica %s", p.ID)
		}
	}
}

func BenchmarkOwners(b *testing.B) {
	r := New(Static(peersN(10)), 0)
	keys := keysN(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owners(keys[i%len(keys)], 2)
	}
}
