// Package ifconv removes structured control flow from loop bodies before
// software pipelining (paper Sec. 3.3: "The loop is first if-converted to
// remove control flow"). Conditionals become predicated straight-line
// code: the compare is emitted with .unc semantics under the enclosing
// context predicate (so nested guards compose and pipeline fill/drain
// shuts whole regions off), arm instructions are qualified by the arm
// predicates, and values produced on both arms merge through a single
// `sel` definition — keeping every virtual register singly defined, which
// rotating register renaming requires.
package ifconv

import (
	"fmt"

	"ltsp/internal/ir"
)

// Stmt is one statement of a structured (pre-if-conversion) loop body:
// either a plain instruction or a conditional region.
type Stmt struct {
	// Instr is a leaf statement; nil when If is set.
	Instr *ir.Instr
	// If is a conditional region; nil when Instr is set.
	If *If
}

// If is a structured two-armed conditional.
type If struct {
	// Cmp is the controlling compare. Its predicate destinations may be
	// left as ir.None; the converter allocates fresh predicate registers.
	Cmp *ir.Instr
	// Then and Else are the arms (either may be empty).
	Then, Else []Stmt
	// Merges are the values live out of the region that both arms
	// produce; each becomes one sel/fsel after the arms.
	Merges []Merge
}

// Merge declares that Dst receives ThenVal when the condition held and
// ElseVal otherwise.
type Merge struct {
	Dst, ThenVal, ElseVal ir.Reg
}

// I wraps an instruction as a statement.
func I(in *ir.Instr) Stmt { return Stmt{Instr: in} }

// Cond wraps a conditional region as a statement.
func Cond(ifStmt *If) Stmt { return Stmt{If: ifStmt} }

// Convert lowers the structured body into the loop's straight-line
// predicated body. The loop must be freshly built (its Body is appended
// to); Setup/LiveOut handling stays with the caller.
func Convert(l *ir.Loop, body []Stmt) error {
	return convert(l, body, ir.None)
}

func convert(l *ir.Loop, body []Stmt, ctx ir.Reg) error {
	for i := range body {
		s := &body[i]
		switch {
		case s.Instr != nil && s.If != nil:
			return fmt.Errorf("ifconv: statement %d is both leaf and region", i)
		case s.Instr != nil:
			in := s.Instr
			if !in.Pred.IsNone() && in.Pred != ctx {
				return fmt.Errorf("ifconv: instruction %v already predicated", in)
			}
			in.Pred = ctx
			l.Append(in)
		case s.If != nil:
			if err := convertIf(l, s.If, ctx); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ifconv: empty statement %d", i)
		}
	}
	return nil
}

func convertIf(l *ir.Loop, region *If, ctx ir.Reg) error {
	cmp := region.Cmp
	switch cmp.Op {
	case ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpEqI, ir.OpCmpLtI, ir.OpFCmpLt:
	default:
		return fmt.Errorf("ifconv: %v is not a compare", cmp.Op)
	}
	if len(cmp.Dsts) != 2 {
		return fmt.Errorf("ifconv: compare %v has %d destinations", cmp.Op, len(cmp.Dsts))
	}
	pT, pF := cmp.Dsts[0], cmp.Dsts[1]
	if pT.IsNone() {
		pT = l.NewPR()
	}
	needElse := len(region.Else) > 0 || len(region.Merges) > 0
	if pF.IsNone() && needElse {
		pF = l.NewPR()
	}
	cmp.Dsts[0], cmp.Dsts[1] = pT, pF
	cmp.Pred = ctx // .unc: both arms shut off when the context is off
	l.Append(cmp)

	if err := convert(l, region.Then, pT); err != nil {
		return err
	}
	if err := convert(l, region.Else, pF); err != nil {
		return err
	}
	for _, m := range region.Merges {
		if m.Dst.Class != m.ThenVal.Class || m.Dst.Class != m.ElseVal.Class {
			return fmt.Errorf("ifconv: merge of mixed classes %v/%v/%v",
				m.Dst.Class, m.ThenVal.Class, m.ElseVal.Class)
		}
		var sel *ir.Instr
		switch m.Dst.Class {
		case ir.ClassGR:
			sel = ir.Sel(m.Dst, pT, m.ThenVal, m.ElseVal)
		case ir.ClassFR:
			sel = ir.FSel(m.Dst, pT, m.ThenVal, m.ElseVal)
		default:
			return fmt.Errorf("ifconv: cannot merge class %v", m.Dst.Class)
		}
		// The merge itself executes only when the enclosing context holds;
		// with the context off, pT and pF are both cleared and the value
		// must not be written at all.
		sel.Pred = ctx
		l.Append(sel)
	}
	return nil
}
