package ifconv

import (
	"testing"

	"ltsp/internal/ir"
)

// simpleDiamond builds: if (x < k) v = a+b else v = a-b; store v.
func simpleDiamond(t *testing.T) (*ir.Loop, ir.Reg) {
	l := ir.NewLoop("diamond")
	x, k, a, b := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	vT, vE, v, st := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	body := []Stmt{
		I(ir.AddI(x, x, 1)), // x updated in place
		Cond(&If{
			Cmp:    ir.CmpLt(ir.None, ir.None, x, k),
			Then:   []Stmt{I(ir.Add(vT, a, b))},
			Else:   []Stmt{I(ir.Sub(vE, a, b))},
			Merges: []Merge{{Dst: v, ThenVal: vT, ElseVal: vE}},
		}),
		I(ir.St(st, v, 8, 8)),
	}
	if err := Convert(l, body); err != nil {
		t.Fatalf("Convert: %v", err)
	}
	l.Init(x, 0)
	l.Init(k, 5)
	l.Init(a, 100)
	l.Init(b, 7)
	l.Init(st, 0x10000)
	return l, v
}

func TestConvertStructure(t *testing.T) {
	l, _ := simpleDiamond(t)
	if err := l.Verify(); err != nil {
		t.Fatalf("converted loop invalid: %v", err)
	}
	// addi, cmp, add(pT), sub(pF), sel, st
	if len(l.Body) != 6 {
		t.Fatalf("body = %d instructions:\n%s", len(l.Body), l)
	}
	cmp := l.Body[1]
	if cmp.Op != ir.OpCmpLt {
		t.Fatalf("body[1] = %v", cmp.Op)
	}
	pT, pF := cmp.Dsts[0], cmp.Dsts[1]
	if pT.IsNone() || pF.IsNone() {
		t.Fatal("converter did not allocate arm predicates")
	}
	if l.Body[2].Pred != pT {
		t.Errorf("then-arm predicate = %v, want %v", l.Body[2].Pred, pT)
	}
	if l.Body[3].Pred != pF {
		t.Errorf("else-arm predicate = %v, want %v", l.Body[3].Pred, pF)
	}
	sel := l.Body[4]
	if sel.Op != ir.OpSel || sel.Srcs[0] != pT {
		t.Errorf("merge = %v", sel)
	}
	if !sel.Pred.IsNone() {
		t.Errorf("top-level merge predicated by %v", sel.Pred)
	}
	if !l.Body[5].Pred.IsNone() {
		t.Error("post-region statement predicated")
	}
}

func TestConvertNested(t *testing.T) {
	l := ir.NewLoop("nested")
	x, y := l.NewGR(), l.NewGR()
	stA, stB := l.NewGR(), l.NewGR()
	body := []Stmt{
		Cond(&If{
			Cmp: ir.CmpLtI(ir.None, ir.None, x, 10),
			Then: []Stmt{
				Cond(&If{
					Cmp:  ir.CmpLtI(ir.None, ir.None, y, 5),
					Then: []Stmt{I(ir.St(stA, x, 8, 0))},
				}),
			},
			Else: []Stmt{I(ir.St(stB, y, 8, 0))},
		}),
	}
	if err := Convert(l, body); err != nil {
		t.Fatalf("Convert: %v", err)
	}
	l.Init(x, 1)
	l.Init(y, 1)
	l.Init(stA, 0x1000)
	l.Init(stB, 0x2000)
	if err := l.Verify(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// The inner compare must be guarded by the outer then-predicate
	// (cmp.unc chaining).
	outer := l.Body[0]
	inner := l.Body[1]
	if inner.Pred != outer.Dsts[0] {
		t.Errorf("inner compare predicate = %v, want outer pT %v", inner.Pred, outer.Dsts[0])
	}
	// The innermost store is guarded by the inner pT.
	if l.Body[2].Pred != inner.Dsts[0] {
		t.Errorf("inner store predicate = %v", l.Body[2].Pred)
	}
}

func TestConvertErrors(t *testing.T) {
	l := ir.NewLoop("bad")
	a := l.NewGR()
	if err := Convert(l, []Stmt{{}}); err == nil {
		t.Error("empty statement accepted")
	}
	if err := Convert(l, []Stmt{Cond(&If{Cmp: ir.Add(a, a, a)})}); err == nil {
		t.Error("non-compare condition accepted")
	}
	f := l.NewPR()
	if err := Convert(l, []Stmt{Cond(&If{
		Cmp:    ir.CmpLtI(ir.None, ir.None, a, 1),
		Merges: []Merge{{Dst: f, ThenVal: a, ElseVal: a}},
	})}); err == nil {
		t.Error("predicate-class merge accepted")
	}
}

func TestConvertMixedClassMergeRejected(t *testing.T) {
	l := ir.NewLoop("mix")
	a := l.NewGR()
	fv := l.NewFR()
	err := Convert(l, []Stmt{Cond(&If{
		Cmp:    ir.CmpLtI(ir.None, ir.None, a, 1),
		Merges: []Merge{{Dst: a, ThenVal: fv, ElseVal: a}},
	})})
	if err == nil {
		t.Error("mixed-class merge accepted")
	}
}
