package ltsp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
	"ltsp/internal/workload"
)

// quickstartLoop is the README's Fig. 1 copy-add loop with an L3 hint on
// the load, the subject of the `ltsp -explain` acceptance scenario.
func quickstartLoop() *ir.Loop {
	l := ir.NewLoop("copyadd")
	v, b, c, k, v2 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 4, 4)
	ld.Mem.Hint = ir.HintL3
	ld.Mem.Stride = ir.StrideUnit
	ld.Mem.StrideBytes = 4
	ld.Comment = "v = a[i]"
	l.Append(ld)
	l.Append(ir.Add(v2, v, k))
	l.Append(ir.St(c, v2, 4, 4))
	l.Init(b, 0x10000)
	l.Init(c, 0x20000)
	l.Init(k, 7)
	l.LiveOut = []ir.Reg{b, c}
	return l
}

func TestTraceQuickstartExplain(t *testing.T) {
	tr := NewTrace()
	c, err := Compile(quickstartLoop(), Options{LatencyTolerant: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined {
		t.Fatal("quickstart loop did not pipeline")
	}
	if got := c.Outcome(); got != obs.OutcomePipelined {
		t.Fatalf("outcome = %s, want %s", got, obs.OutcomePipelined)
	}
	m := machine.Itanium2()

	var class []obs.LoadClassEvent
	var sched []obs.LoadSchedEvent
	var hints []obs.HintLatencyEvent
	var outcome *obs.OutcomeEvent
	for _, e := range tr.Events() {
		switch ev := e.(type) {
		case obs.LoadClassEvent:
			class = append(class, ev)
		case obs.LoadSchedEvent:
			sched = append(sched, ev)
		case obs.HintLatencyEvent:
			hints = append(hints, ev)
		case obs.OutcomeEvent:
			outcome = &ev
		}
	}
	// Every load of the loop (there is one) must be named with its
	// classification, slack, assigned latency, and stage.
	if len(class) != 1 || len(sched) != 1 || len(hints) != 1 {
		t.Fatalf("events: class=%d sched=%d hints=%d, want 1 each", len(class), len(sched), len(hints))
	}
	cl := class[0]
	if cl.Critical || !cl.Eligible {
		t.Errorf("classification = %+v, want eligible non-critical", cl)
	}
	if cl.Slack < 0 {
		t.Errorf("non-critical load has no slack recorded: %+v", cl)
	}
	if cl.ExpectedLat != m.Lat.L3Typ {
		t.Errorf("expected latency = %d, want L3Typ %d", cl.ExpectedLat, m.Lat.L3Typ)
	}
	if hints[0].Hint != "L3" || hints[0].HintLat != m.Lat.L3Typ {
		t.Errorf("hint translation = %+v", hints[0])
	}
	sc := sched[0]
	if sc.SchedLat != m.Lat.L3Typ || sc.Stage < 0 {
		t.Errorf("load placement = %+v", sc)
	}
	if outcome == nil || outcome.Result != obs.OutcomePipelined || outcome.II != c.II {
		t.Fatalf("outcome event = %+v", outcome)
	}

	// The human report names the load with the headline facts.
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"v = a[i]", "non-critical", "slack", "stage", "outcome: pipelined"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain report missing %q:\n%s", want, out)
		}
	}

	// And the JSON form is a well-formed array of kinded events.
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(b, &evs); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(evs) != tr.Len() {
		t.Errorf("JSON has %d events, trace has %d", len(evs), tr.Len())
	}
}

// TestTraceMcfCaseStudy checks the Sec. 4.4 acceptance scenario: in the
// refresh_potential pointer chase the recurrence load is classified
// critical (boosting it would raise the II) while the delinquent payload
// loads are boosted above base latency.
func TestTraceMcfCaseStudy(t *testing.T) {
	gen, _ := workload.PointerChase(1<<12, 7)
	tr := NewTrace()
	c, err := Compile(gen(), Options{
		Mode: ModeHLO, Prefetch: true, TripEstimate: 2.3,
		BoostDelinquent: true, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined {
		t.Fatal("refresh_potential did not pipeline")
	}

	classByName := map[string]obs.LoadClassEvent{}
	schedByName := map[string]obs.LoadSchedEvent{}
	for _, e := range tr.Events() {
		switch ev := e.(type) {
		case obs.LoadClassEvent:
			classByName[ev.Name] = ev
		case obs.LoadSchedEvent:
			schedByName[ev.Name] = ev
		}
	}

	chase, ok := classByName["node = node->child"]
	if !ok {
		t.Fatalf("no classification event for the chase load; have %v", names(classByName))
	}
	if !chase.Critical {
		t.Errorf("chase load not classified critical: %+v", chase)
	}
	if len(chase.CycleNodes) == 0 || chase.CycleII <= chase.Floor {
		t.Errorf("chase load lacks a binding cycle: %+v", chase)
	}

	boosted := 0
	for _, name := range []string{"basic_arc->cost", "pred->potential"} {
		sc, ok := schedByName[name]
		if !ok {
			t.Errorf("no placement event for %q", name)
			continue
		}
		if sc.Critical {
			t.Errorf("payload load %q classified critical", name)
		}
		if sc.SchedLat > sc.BaseLat {
			boosted++
		}
	}
	if boosted == 0 {
		t.Error("no payload load was boosted above base latency")
	}
}

func names(m map[string]obs.LoadClassEvent) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceSequentialOutcome checks that a forced-sequential compile still
// records its outcome for the service counters.
func TestTraceSequentialOutcome(t *testing.T) {
	no := false
	tr := NewTrace()
	c, err := Compile(quickstartLoop(), Options{Pipeline: &no, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if c.Pipelined {
		t.Fatal("Pipeline=false compiled a pipelined kernel")
	}
	if got := c.Outcome(); got != obs.OutcomeSequential {
		t.Fatalf("outcome = %s, want sequential", got)
	}
	o, ok := tr.Outcome()
	if !ok || o.Result != obs.OutcomeSequential {
		t.Fatalf("trace outcome = %+v, %v", o, ok)
	}
	// The sequential program still runs.
	if _, err := Run(c, 4, interp.NewMemory()); err != nil {
		t.Fatal(err)
	}
}
