module ltsp

go 1.22
