// Command ltspd serves the latency-tolerant software pipeliner over HTTP:
// a long-lived compile-and-simulate service with a bounded worker pool, a
// content-addressed artifact cache, and JSON metrics.
//
// Usage:
//
//	ltspd -addr :8347 -pool 8 -cache 512
//
// Endpoints (see internal/server and the README "Service" section):
//
//	POST /v1/compile   POST /v1/simulate   GET /healthz   GET /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ltsp/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		pool         = flag.Int("pool", 4, "max concurrent compile/simulate workers")
		cacheCap     = flag.Int("cache", 256, "artifact cache capacity (compiled loops)")
		compileTO    = flag.Duration("compile-timeout", 10*time.Second, "per-request compile deadline")
		simTO        = flag.Duration("sim-timeout", 30*time.Second, "per-request simulate deadline")
		queueTO      = flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		maxBodyBytes = flag.Int64("max-body", 8<<20, "max request body bytes")
	)
	flag.Parse()

	srv := server.New(server.Config{
		PoolSize:        *pool,
		CacheCapacity:   *cacheCap,
		CompileTimeout:  *compileTO,
		SimulateTimeout: *simTO,
		QueueTimeout:    *queueTO,
		MaxBodyBytes:    *maxBodyBytes,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ltspd: listening on %s (pool=%d cache=%d)", *addr, *pool, *cacheCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ltspd: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("ltspd: %s — draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ltspd: http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ltspd: worker drain: %v", err)
		}
		log.Printf("ltspd: drained")
	}
}
