// Command ltspd serves the latency-tolerant software pipeliner over HTTP:
// a long-lived compile-and-simulate service with a bounded worker pool, a
// content-addressed artifact cache, structured request logging, and JSON
// metrics.
//
// Usage:
//
//	ltspd -addr :8347 -pool 8 -cache 512
//
// With -data-dir the artifact cache is backed by a content-addressed
// persistent store: compiled artifacts survive restarts and are served
// from disk without recompiling. With -peers (plus -self) the daemon
// joins a cluster: loop hashes are owned by replica sets on a shared
// consistent-hash ring, and a node asks the owners for an artifact —
// GET /v2/artifacts/{hash} — before compiling locally. See the README
// "Running a cluster" section for a 3-node quickstart.
//
// The cluster self-heals: -peers-file or -peers-dns replace the static
// list with a live membership source (atomic ring swaps, per-peer
// health ejection tuned by -peer-fail-threshold/-peer-probe-interval),
// read-repair pushes under-replicated artifacts to their owners within
// -repair-budget, and anti-entropy digest sync (-anti-entropy-interval)
// reconverges a node after an outage. Every artifact creation is
// recorded in a hash-chained Merkle-batched provenance log (-provenance,
// on by default with -data-dir); poisoned cache entries are quarantined
// instead of served, and GET /v2/provenance/{hash} exposes the verdict.
// See the README "Self-healing cluster" and "Provenance" sections.
//
// Endpoints (see internal/server and the README "Service" section):
//
//	POST /v2/compile   POST /v2/compile-batch   POST /v2/simulate
//	GET  /v2/artifacts/{hash}   GET /v2/artifacts/{hash}/trace
//	PUT  /v2/artifacts/{hash}   GET /v2/provenance/{hash}
//	GET  /v2/sync/digest   GET /v2/sync/keys
//	GET  /v2/requests/{trace-id}   GET /debug/requests
//	GET  /healthz      GET /metrics
//
// The /v1 prefix serves the same handlers for existing callers; /v2 is
// the documented resilient surface: every error carries the structured
// envelope {"error":{"code","message","retryable"}}, requests may carry
// an X-Request-Deadline-Ms header that the server propagates into the
// compile, and overload or drain is signaled with 503 + Retry-After
// before a worker slot is consumed.
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ on the same listener (off by default: profiling
// endpoints expose internals and cost cycles under load).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ltsp/internal/buildinfo"
	"ltsp/internal/cluster"
	"ltsp/internal/server"
	"ltsp/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		pool         = flag.Int("pool", 4, "max concurrent compile/simulate workers")
		cacheCap     = flag.Int("cache", 256, "artifact cache capacity (compiled loops)")
		compileTO    = flag.Duration("compile-timeout", 10*time.Second, "per-request compile deadline")
		simTO        = flag.Duration("sim-timeout", 30*time.Second, "per-request simulate deadline")
		queueTO      = flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		maxBodyBytes = flag.Int64("max-body", 8<<20, "max request body bytes")
		shedOff      = flag.Bool("no-shed", false, "disable deadline-aware admission control (load shedding)")
		verifySample = flag.Float64("verify-sample", server.DefaultVerifySample, "fraction of compilations independently verified (structural checks + differential oracle); <0 disables, >=1 verifies all")
		reproDir     = flag.String("repro-dir", "", "directory for minimized repro bundles from panics and verification failures (empty = off)")
		traceSample  = flag.Float64("trace-sample", server.DefaultTraceSample, "fraction of requests span-traced without an X-Trace-ID header (requests carrying one are always traced); <0 disables sampling, >=1 traces all")
		traceRing    = flag.Int("trace-ring", 0, "recent request traces retained for /debug/requests and /v2/requests/{trace-id} (0 = default 256; slow/error outliers pinned in a ring a quarter this size)")
		traceSlow    = flag.Duration("trace-slow", 0, "duration at which a traced request is retained as a slow outlier (0 = default 100ms)")
		dataDir      = flag.String("data-dir", "", "directory for the persistent content-addressed artifact store (empty = memory only)")
		storeMax     = flag.Int64("store-max-bytes", 1<<30, "disk budget for the artifact store; LRU entries are evicted beyond it (0 = unbounded)")
		storeFsync   = flag.Bool("store-fsync", false, "fsync artifact writes (durability over write latency)")
		storeScan    = flag.Duration("store-scan-interval", time.Minute, "background store scan interval, reconciling external changes and enforcing the budget (0 = off)")
		peerList     = flag.String("peers", "", "comma-separated cluster membership incl. this node: addr or id=addr (empty = single node)")
		peersFile    = flag.String("peers-file", "", "peers file for dynamic membership, re-read every -resolve-interval: one addr or id=addr per line, #-comments allowed (mutually exclusive with -peers-dns)")
		peersDNS     = flag.String("peers-dns", "", "DNS SRV name for dynamic membership, e.g. _ltspd._tcp.ltspd.svc (mutually exclusive with -peers-file)")
		resolveEvery = flag.Duration("resolve-interval", 3*time.Second, "poll interval for -peers-file / -peers-dns membership refresh")
		self         = flag.String("self", "", "this node's peer ID on the ring (required with -peers; must match one entry)")
		replication  = flag.Int("replication", 2, "replica-set size for artifact ownership")
		peerTO       = flag.Duration("peer-timeout", 2*time.Second, "budget for one whole peer cache-fill (all hedged legs)")
		peerHedge    = flag.Duration("peer-hedge-delay", 50*time.Millisecond, "stagger before hedging a peer fill to the next replica")
		peerFails    = flag.Int("peer-fail-threshold", 3, "consecutive failures before a peer is ejected as dead")
		peerProbe    = flag.Duration("peer-probe-interval", 2*time.Second, "active /healthz probe interval for dead peers (0 = passive re-admission only)")
		repairBudget = flag.Float64("repair-budget", server.DefaultRepairBudget, "read-repair budget in repairs/second pushed to under-replicated peers (0 = off)")
		antiEntropy  = flag.Duration("anti-entropy-interval", 30*time.Second, "background anti-entropy digest-exchange interval (0 = off)")
		provenanceOn = flag.Bool("provenance", true, "record a tamper-evident provenance chain of artifact creations (requires -data-dir)")
		drainRetry   = flag.Duration("drain-retry-after", time.Second, "Retry-After hint sent with 503 draining responses")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")
		logText      = flag.Bool("log-text", false, "log in text form instead of JSON")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("ltspd %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ltspd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewJSONHandler(os.Stderr, hopts)
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{
			MaxBytes:     *storeMax,
			Fsync:        *storeFsync,
			ScanInterval: *storeScan,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ltspd: opening -data-dir: %v\n", err)
			os.Exit(1)
		}
		logger.Info("artifact store open",
			slog.String("dir", *dataDir),
			slog.Int("entries", st.Len()),
			slog.Int64("bytes", st.Bytes()),
		)
	}

	// The provenance chain rides on the persistent store: without a disk
	// entry to cross-check, a chain record has nothing to quarantine.
	var prov *store.Log
	if *provenanceOn && st != nil {
		var err error
		prov, err = store.OpenLog(*dataDir, store.LogOptions{Fsync: *storeFsync})
		if err != nil {
			// A broken chain means the log was rewritten, reordered or
			// truncated on disk. Refuse to extend it silently: move the
			// evidence aside loudly and start a fresh chain.
			logger.Error("provenance chain verification failed; quarantining the old chain",
				slog.String("err", err.Error()))
			for _, p := range []string{store.LogPath(*dataDir), store.RootsPath(*dataDir)} {
				if _, serr := os.Stat(p); serr == nil {
					if rerr := os.Rename(p, p+".corrupt"); rerr != nil {
						fmt.Fprintf(os.Stderr, "ltspd: quarantining %s: %v\n", p, rerr)
						os.Exit(1)
					}
					logger.Warn("provenance file quarantined", slog.String("moved", p+".corrupt"))
				}
			}
			prov, err = store.OpenLog(*dataDir, store.LogOptions{Fsync: *storeFsync})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ltspd: reopening provenance log: %v\n", err)
				os.Exit(1)
			}
		}
		stats := prov.Stats()
		logger.Info("provenance chain open",
			slog.Uint64("records", stats.Records),
			slog.Int("batches", stats.Batches),
		)
	}

	if *peersFile != "" && *peersDNS != "" {
		fmt.Fprintln(os.Stderr, "ltspd: -peers-file and -peers-dns are mutually exclusive")
		os.Exit(2)
	}
	var peers []cluster.Peer
	if *peerList != "" {
		var err error
		peers, err = cluster.ParsePeers(*peerList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ltspd: bad -peers: %v\n", err)
			os.Exit(2)
		}
		if *self == "" {
			fmt.Fprintln(os.Stderr, "ltspd: -peers requires -self (this node's peer ID)")
			os.Exit(2)
		}
		found := false
		for _, p := range peers {
			if p.ID == *self {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "ltspd: -self %q is not in -peers\n", *self)
			os.Exit(2)
		}
		logger.Info("cluster mode",
			slog.String("self", *self),
			slog.Int("peers", len(peers)),
			slog.Int("replication", *replication),
		)
	}
	var resolver cluster.Source
	switch {
	case *peersFile != "":
		resolver = cluster.FileSource{Path: *peersFile}
	case *peersDNS != "":
		resolver = cluster.DNSSource{Name: *peersDNS}
	}
	if resolver != nil {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "ltspd: dynamic membership requires -self (this node's peer ID)")
			os.Exit(2)
		}
		if initial, err := resolver.Resolve(); err != nil {
			// Not fatal: the poller keeps retrying, and the ring holds self
			// until the source first answers.
			logger.Warn("initial membership resolve failed", slog.String("err", err.Error()))
		} else {
			peers = initial
		}
		logger.Info("dynamic membership",
			slog.String("self", *self),
			slog.String("source", *peersFile+*peersDNS),
			slog.Duration("interval", *resolveEvery),
		)
	}

	// On the command line 0 means "off" (Config treats 0 as "use the
	// default", which is right for embedders but surprising for a flag).
	if *verifySample == 0 {
		*verifySample = -1
	}
	if *traceSample == 0 {
		*traceSample = -1
	}
	if *repairBudget == 0 {
		*repairBudget = -1
	}
	srv := server.New(server.Config{
		PoolSize:            *pool,
		CacheCapacity:       *cacheCap,
		CompileTimeout:      *compileTO,
		SimulateTimeout:     *simTO,
		QueueTimeout:        *queueTO,
		MaxBodyBytes:        *maxBodyBytes,
		ShedDisabled:        *shedOff,
		DrainRetryAfter:     *drainRetry,
		VerifySample:        *verifySample,
		ReproDir:            *reproDir,
		Store:               st,
		Provenance:          prov,
		Peers:               peers,
		Resolver:            resolver,
		ResolveInterval:     *resolveEvery,
		Self:                *self,
		Replication:         *replication,
		PeerTimeout:         *peerTO,
		PeerHedgeDelay:      *peerHedge,
		PeerFailThreshold:   *peerFails,
		PeerProbeInterval:   *peerProbe,
		RepairBudget:        *repairBudget,
		AntiEntropyInterval: *antiEntropy,
		Logger:              logger,
		TraceSample:         *traceSample,
		TraceRing:           *traceRing,
		TraceSlow:           *traceSlow,
	})
	var handlerRoot http.Handler = srv
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handlerRoot = mux
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handlerRoot,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", *addr),
			slog.Int("pool", *pool),
			slog.Int("cache", *cacheCap),
			slog.String("version", buildinfo.Version),
			slog.String("go", buildinfo.GoVersion()),
		)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", slog.String("err", err.Error()))
			prov.Close()
			if st != nil {
				st.Close()
			}
			os.Exit(1)
		}
	case sig := <-sigCh:
		logger.Info("draining", slog.String("signal", sig.String()))
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", slog.String("err", err.Error()))
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("worker drain", slog.String("err", err.Error()))
		}
		// Flush the final metrics snapshot to the log so a scrape that
		// missed the last interval still sees the totals.
		logger.Info("drained", slog.Any("metrics", srv.MetricsSnapshot()))
	}
	prov.Close()
	if st != nil {
		st.Close()
	}
}
