// Command ltspd serves the latency-tolerant software pipeliner over HTTP:
// a long-lived compile-and-simulate service with a bounded worker pool, a
// content-addressed artifact cache, structured request logging, and JSON
// metrics.
//
// Usage:
//
//	ltspd -addr :8347 -pool 8 -cache 512
//
// Endpoints (see internal/server and the README "Service" section):
//
//	POST /v2/compile   POST /v2/compile-batch   POST /v2/simulate
//	GET  /v2/artifacts/{hash}/trace
//	GET  /healthz      GET /metrics
//
// The /v1 prefix serves the same handlers for existing callers; /v2 is
// the documented resilient surface: every error carries the structured
// envelope {"error":{"code","message","retryable"}}, requests may carry
// an X-Request-Deadline-Ms header that the server propagates into the
// compile, and overload or drain is signaled with 503 + Retry-After
// before a worker slot is consumed.
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ on the same listener (off by default: profiling
// endpoints expose internals and cost cycles under load).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ltsp/internal/buildinfo"
	"ltsp/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		pool         = flag.Int("pool", 4, "max concurrent compile/simulate workers")
		cacheCap     = flag.Int("cache", 256, "artifact cache capacity (compiled loops)")
		compileTO    = flag.Duration("compile-timeout", 10*time.Second, "per-request compile deadline")
		simTO        = flag.Duration("sim-timeout", 30*time.Second, "per-request simulate deadline")
		queueTO      = flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		maxBodyBytes = flag.Int64("max-body", 8<<20, "max request body bytes")
		shedOff      = flag.Bool("no-shed", false, "disable deadline-aware admission control (load shedding)")
		verifySample = flag.Float64("verify-sample", server.DefaultVerifySample, "fraction of compilations independently verified (structural checks + differential oracle); <0 disables, >=1 verifies all")
		reproDir     = flag.String("repro-dir", "", "directory for minimized repro bundles from panics and verification failures (empty = off)")
		drainRetry   = flag.Duration("drain-retry-after", time.Second, "Retry-After hint sent with 503 draining responses")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")
		logText      = flag.Bool("log-text", false, "log in text form instead of JSON")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		version      = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("ltspd %s (%s)\n", buildinfo.Version, buildinfo.GoVersion())
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ltspd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewJSONHandler(os.Stderr, hopts)
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	// On the command line 0 means "off" (Config treats 0 as "use the
	// default", which is right for embedders but surprising for a flag).
	if *verifySample == 0 {
		*verifySample = -1
	}
	srv := server.New(server.Config{
		PoolSize:        *pool,
		CacheCapacity:   *cacheCap,
		CompileTimeout:  *compileTO,
		SimulateTimeout: *simTO,
		QueueTimeout:    *queueTO,
		MaxBodyBytes:    *maxBodyBytes,
		ShedDisabled:    *shedOff,
		DrainRetryAfter: *drainRetry,
		VerifySample:    *verifySample,
		ReproDir:        *reproDir,
		Logger:          logger,
	})
	var handlerRoot http.Handler = srv
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handlerRoot = mux
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handlerRoot,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", *addr),
			slog.Int("pool", *pool),
			slog.Int("cache", *cacheCap),
			slog.String("version", buildinfo.Version),
			slog.String("go", buildinfo.GoVersion()),
		)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", slog.String("err", err.Error()))
			os.Exit(1)
		}
	case sig := <-sigCh:
		logger.Info("draining", slog.String("signal", sig.String()))
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", slog.String("err", err.Error()))
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("worker drain", slog.String("err", err.Error()))
		}
		// Flush the final metrics snapshot to the log so a scrape that
		// missed the last interval still sees the totals.
		logger.Info("drained", slog.Any("metrics", srv.MetricsSnapshot()))
	}
}
