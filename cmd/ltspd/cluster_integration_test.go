package main

// Multi-process cluster integration: three real ltspd processes on
// loopback sharing work through the consistent-hash ring and their
// persistent stores. The test builds the binary, boots the fleet,
// compiles on one node, hits the artifact from another, then kills and
// restarts the first node and proves it warm-starts from disk.
//
// Gated behind LTSP_CLUSTER_IT: it spawns processes and binds ports, so
// plain `go test ./...` stays hermetic. CI runs it as its own job:
//
//	LTSP_CLUSTER_IT=1 go test -run TestClusterIntegration -v ./cmd/ltspd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/ir"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/ltspclient"
)

func TestClusterIntegration(t *testing.T) {
	if os.Getenv("LTSP_CLUSTER_IT") == "" {
		t.Skip("set LTSP_CLUSTER_IT=1 to run the multi-process cluster test")
	}

	bin := filepath.Join(t.TempDir(), "ltspd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const nodes = 3
	ports := freePorts(t, nodes)
	peers := make([]cluster.Peer, nodes)
	peerFlag := ""
	for i, p := range ports {
		id := string(rune('a' + i))
		peers[i] = cluster.Peer{ID: id, Addr: fmt.Sprintf("http://127.0.0.1:%d", p)}
		if i > 0 {
			peerFlag += ","
		}
		peerFlag += fmt.Sprintf("%s=%s", id, peers[i].Addr)
	}

	dirs := make([]string, nodes)
	procs := make([]*exec.Cmd, nodes)
	startNode := func(i int) {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-data-dir", dirs[i],
			"-peers", peerFlag,
			"-self", peers[i].ID,
			"-replication", "2",
			"-anti-entropy-interval", "300ms",
			"-peer-probe-interval", "300ms",
			"-log-text", "-log-level", "warn",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start node %s: %v", peers[i].ID, err)
		}
		procs[i] = cmd
		waitHealthy(t, peers[i].Addr)
	}
	stopNode := func(i int) {
		t.Helper()
		_ = procs[i].Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- procs[i].Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = procs[i].Process.Kill()
			<-done
		}
		procs[i] = nil
	}
	for i := 0; i < nodes; i++ {
		dirs[i] = t.TempDir()
		startNode(i)
	}
	t.Cleanup(func() {
		for i, p := range procs {
			if p != nil {
				stopNode(i)
			}
		}
	})

	// Pick two loops whose replica set is {a, c}: compiled on a, they
	// reach b only through a peer cache-fill. The first drives the plain
	// fill assertions; the second is requested under a trace so the
	// cross-node span timeline can be checked end to end.
	ring := cluster.New(cluster.Static(peers), 0)
	var reqs []*wire.CompileRequest
	var hashes []string
	for k := int64(0); k < 2048 && len(reqs) < 2; k++ {
		r, h := exampleRequest(t, 700+k)
		owners := ring.Owners(h, 2)
		if len(owners) == 2 && owners[0].ID == "a" && !ownersContain(owners, "b") {
			reqs, hashes = append(reqs, r), append(hashes, h)
		}
	}
	if len(reqs) < 2 {
		t.Fatal("fewer than two loop variants with replica set {a, c}")
	}
	req, hash := reqs[0], hashes[0]

	// Compile on a.
	var cr wire.CompileResponse
	postJSON(t, peers[0].Addr+"/v2/compile", req, &cr)
	if cr.Hash != hash || cr.Cached {
		t.Fatalf("compile on a: hash %s cached %v, want %s uncached", cr.Hash, cr.Cached, hash)
	}

	// Hit on b: not an owner, so this is a cross-peer fill.
	postJSON(t, peers[1].Addr+"/v2/compile", req, &cr)
	if !cr.Cached {
		t.Fatal("compile on b not served from the cluster")
	}
	var m struct {
		Cluster struct {
			PeerHits int64 `json:"peer_hits"`
		} `json:"cluster"`
	}
	getJSON(t, peers[1].Addr+"/metrics", &m)
	if m.Cluster.PeerHits < 1 {
		t.Fatalf("node b peer_hits = %d, want >= 1", m.Cluster.PeerHits)
	}

	// Traced cross-peer fill: compile the second loop on a, request it on
	// b through the real client under a telemetry trace, and fetch the
	// span timeline back from b. One trace ID must show the client's
	// attempt, b's cache miss, the winning peer leg naming the owner it
	// pulled from, and the write-through.
	postJSON(t, peers[0].Addr+"/v2/compile", reqs[1], &cr)
	if cr.Hash != hashes[1] {
		t.Fatalf("compile traced loop on a: hash %s, want %s", cr.Hash, hashes[1])
	}
	cl, err := ltspclient.New(ltspclient.Config{BaseURL: peers[1].Addr})
	if err != nil {
		t.Fatal(err)
	}
	ttr := telemetry.New("")
	tctx := telemetry.WithSpan(context.Background(), ttr, nil)
	tcr, err := cl.Compile(tctx, reqs[1])
	if err != nil {
		t.Fatalf("traced compile on b: %v", err)
	}
	if !tcr.Cached {
		t.Fatal("traced compile on b not served from the cluster")
	}
	var attemptSeen bool
	for _, s := range ttr.Snapshot() {
		if s.Name == "attempt" {
			attemptSeen = true
		}
	}
	if !attemptSeen {
		t.Fatal("client recorded no attempt span")
	}
	// The server records a trace after the response is written: retry.
	var srvTrace *wire.RequestTraceResponse
	for i := 0; i < 40; i++ {
		srvTrace, err = cl.RequestTrace(context.Background(), ttr.ID())
		if err == nil || !errors.Is(err, ltspclient.ErrNotFound) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("fetch trace %s from b: %v", ttr.ID(), err)
	}
	stage := make(map[string]wire.SpanJSON)
	for _, s := range srvTrace.Spans {
		stage[s.Name] = s
	}
	if s, ok := stage["mem_lookup"]; !ok || s.Attrs["outcome"] != "miss" {
		t.Errorf("mem_lookup span = %+v, want outcome miss", s)
	}
	leg, ok := stage["peer_leg"]
	if !ok {
		t.Fatalf("no peer_leg span in %d spans", len(srvTrace.Spans))
	}
	if leg.Attrs["outcome"] != "hit" || (leg.Attrs["peer"] != "a" && leg.Attrs["peer"] != "c") {
		t.Errorf("winning peer_leg = %+v, want outcome hit from owner a or c", leg.Attrs)
	}
	if _, ok := stage["write_through"]; !ok {
		t.Error("no write_through span after the peer fill")
	}
	if _, ok := stage["compile"]; ok {
		t.Error("b compiled despite the peer fill")
	}

	// Export the timeline as Chrome trace events; CI uploads it as a
	// build artifact when LTSP_SPAN_OUT names a path.
	cresp, err := http.Get(peers[1].Addr + "/v2/requests/" + ttr.ID() + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if err != nil || cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: %s: %v", cresp.Status, err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil || len(events) == 0 {
		t.Fatalf("chrome export is not a non-empty event array: %v", err)
	}
	if out := os.Getenv("LTSP_SPAN_OUT"); out != "" {
		if err := os.WriteFile(out, chrome, 0o644); err != nil {
			t.Fatalf("write span timeline artifact: %v", err)
		}
		t.Logf("span timeline written to %s (%d events)", out, len(events))
	}

	// A Prometheus scrape of b parses and carries the per-stage family.
	preq, err := http.NewRequest(http.MethodGet, peers[1].Addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil || presp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %s: %v", presp.Status, err)
	}
	if !bytes.HasPrefix(prom, []byte("# HELP ")) ||
		!bytes.Contains(prom, []byte(`ltspd_stage_latency_ms_count{stage="peer_leg"}`)) {
		t.Fatalf("prometheus exposition missing per-stage histograms:\n%.400s", prom)
	}

	// Kill a and bring it back on the same data dir: the artifact must
	// survive the restart and be served without recompiling.
	stopNode(0)
	startNode(0)
	postJSON(t, peers[0].Addr+"/v2/compile", req, &cr)
	if !cr.Cached {
		t.Fatal("restarted node a recompiled instead of warm-starting from disk")
	}
	var ma struct {
		DiskHits int64 `json:"disk_hits"`
	}
	getJSON(t, peers[0].Addr+"/metrics", &ma)
	if ma.DiskHits < 1 {
		t.Fatalf("restarted node a disk_hits = %d, want >= 1", ma.DiskHits)
	}

	// Self-healing: kill c, write a batch that c co-owns on the surviving
	// owners, restart c, and prove anti-entropy repopulates it — with
	// every node pinning each artifact under the same provenance checksum.
	var healReqs []*wire.CompileRequest
	var healHashes []string
	var healOwners []cluster.Peer // the surviving owner to compile on
	for k := int64(0); k < 4096 && len(healReqs) < 3; k++ {
		r, h := exampleRequest(t, 9100+k)
		owners := ring.Owners(h, 2)
		if len(owners) == 2 && ownersContain(owners, "c") && owners[0].ID != "c" {
			healReqs, healHashes = append(healReqs, r), append(healHashes, h)
			healOwners = append(healOwners, owners[0])
		}
	}
	if len(healReqs) < 3 {
		t.Fatal("fewer than three loop variants co-owned by c")
	}
	stopNode(2)
	for i, r := range healReqs {
		var who int
		for j, p := range peers {
			if p.ID == healOwners[i].ID {
				who = j
			}
		}
		postJSON(t, peers[who].Addr+"/v2/compile", r, &cr)
		if cr.Hash != healHashes[i] {
			t.Fatalf("heal-batch compile %d: hash %s, want %s", i, cr.Hash, healHashes[i])
		}
	}
	startNode(2)

	// Anti-entropy on the restarted node pulls everything it co-owns.
	type provDoc struct {
		Checksum   string `json:"checksum"`
		Present    bool   `json:"present"`
		Consistent bool   `json:"consistent"`
		HeadSeq    uint64 `json:"head_seq"`
	}
	provOn := func(node int, hash string) (provDoc, bool) {
		resp, err := http.Get(peers[node].Addr + "/v2/provenance/" + hash)
		if err != nil {
			return provDoc{}, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return provDoc{}, false
		}
		var d provDoc
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			return provDoc{}, false
		}
		return d, true
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		healed := 0
		for _, h := range healHashes {
			if d, ok := provOn(2, h); ok && d.Present && d.Consistent {
				healed++
			}
		}
		if healed == len(healHashes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted node c reconverged only %d/%d artifacts", healed, len(healHashes))
		}
		time.Sleep(100 * time.Millisecond)
	}
	var mc struct {
		Cluster struct {
			SyncPulls int64 `json:"sync_pulls"`
		} `json:"cluster"`
	}
	getJSON(t, peers[2].Addr+"/metrics", &mc)
	if mc.Cluster.SyncPulls < int64(len(healHashes)) {
		t.Fatalf("node c sync_pulls = %d, want >= %d", mc.Cluster.SyncPulls, len(healHashes))
	}
	// Every node holding a record for a healed hash pins the same
	// checksum; c holds all of them.
	for _, h := range healHashes {
		var want string
		holders := 0
		for n := 0; n < nodes; n++ {
			d, ok := provOn(n, h)
			if !ok {
				continue
			}
			holders++
			if want == "" {
				want = d.Checksum
			} else if d.Checksum != want {
				t.Fatalf("hash %s: node %d checksum %q diverges from %q", h[:12], n, d.Checksum, want)
			}
		}
		if holders < 2 {
			t.Fatalf("hash %s: only %d nodes hold a provenance record", h[:12], holders)
		}
	}

	// Stop the fleet cleanly, then verify each node's on-disk provenance
	// chain end to end — records, links, Merkle batch roots.
	for i := range procs {
		if procs[i] != nil {
			stopNode(i)
		}
	}
	for i := range dirs {
		if err := store.VerifyDir(dirs[i], 0); err != nil {
			t.Fatalf("node %s provenance chain: %v", peers[i].ID, err)
		}
	}
	// CI uploads node a's chain as a build artifact when LTSP_PROV_OUT
	// names a directory.
	if out := os.Getenv("LTSP_PROV_OUT"); out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, src := range []string{store.LogPath(dirs[0]), store.RootsPath(dirs[0])} {
			data, err := os.ReadFile(src)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				t.Fatal(err)
			}
			dst := filepath.Join(out, filepath.Base(src))
			if err := os.WriteFile(dst, data, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("provenance artifact written to %s (%d bytes)", dst, len(data))
		}
	}
}

func ownersContain(ps []cluster.Peer, id string) bool {
	for _, p := range ps {
		if p.ID == id {
			return true
		}
	}
	return false
}

// freePorts reserves n distinct loopback ports. The listeners close
// before the daemons bind — a small race, harmless on a CI box.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("node %s never became healthy", base)
}

// exampleRequest builds the paper's running example with a
// distinguishing constant k, so each k is a distinct artifact.
func exampleRequest(t *testing.T, k int64) (*wire.CompileRequest, string) {
	t.Helper()
	l := ir.NewLoop("copyadd")
	v, bs, bd, r, kr := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, kr))
	st := ir.St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x100000)
	l.Init(bd, 0x200000)
	l.Init(kr, k)
	l.LiveOut = []ir.Reg{bs, bd}
	data, err := ir.EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	req := &wire.CompileRequest{Version: wire.Version, Loop: data,
		Options: wire.Options{Mode: "hlo", Prefetch: true, LatencyTolerant: true}}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return req, hash
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s: %s", url, resp.Status, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
