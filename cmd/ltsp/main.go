// Command ltsp compiles one of the benchmark-model loops with the
// latency-tolerant software pipeliner and prints the HLO prefetcher's
// decisions, the II/stage structure, per-load scheduling reports and the
// kernel listing (paper Figs. 3/6 style).
//
// Usage:
//
//	ltsp -list
//	ltsp -loop 429.mcf/refresh_potential -mode hlo -tolerant
//	ltsp -loop example -mode all-l3 -tolerant
//	ltsp -loop example -explain            # why each decision was made
//	ltsp -loop example -explain-json       # the same trace as JSON events
//
// Client mode submits the loop to a running ltspd daemon through the
// resilient ltspclient package (typed errors, retries with backoff
// honoring Retry-After, deadline propagation, optional hedging), and
// -dump writes the wire-format request for use with curl or a loop file:
//
//	ltsp -loop example -server http://localhost:8347 -sim-trip 1000
//	ltsp -loop example -server http://localhost:8347 -retries 5 -hedge 100ms
//	ltsp -loop example -dump request.json
//	ltsp -loop-file request.json -server http://localhost:8347
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ltsp"
	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
	"ltsp/internal/repro"
	"ltsp/internal/telemetry"
	"ltsp/internal/verify"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
	"ltsp/ltspclient"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available loops")
		loopName = flag.String("loop", "example", "loop to compile: 'example' or <benchmark>/<loop>")
		mode     = flag.String("mode", "hlo", "hint mode: none | all-l3 | all-fp-l2 | hlo")
		tolerant = flag.Bool("tolerant", true, "enable latency-tolerant pipelining")
		prefetch = flag.Bool("prefetch", true, "enable the software prefetcher")
		trip     = flag.Float64("trip", 100, "compile-time trip-count estimate")
		backendF = flag.String("backend", "heuristic", "scheduler backend: heuristic | exact | oracle")
		serverTo = flag.String("server", "", "submit to a running ltspd daemon at this base URL instead of compiling in-process")
		loopFile = flag.String("loop-file", "", "read the compile request from this wire-format JSON file (client mode)")
		dump     = flag.String("dump", "", "write the wire-format compile request to this file ('-' = stdout) and exit")
		simTrip  = flag.Int64("sim-trip", 0, "in client mode, also simulate the compiled artifact for this trip count")
		explain  = flag.Bool("explain", false, "print the pipeliner's decision trace (classification, II search, fallbacks)")
		explainJ = flag.Bool("explain-json", false, "print the decision trace as JSON events")
		verifyF  = flag.Bool("verify", false, "independently verify the compiled kernel: structural schedule checks plus the semantic differential oracle")
		reproF   = flag.String("repro", "", "replay a repro bundle written by ltspd (-repro-dir) and report whether the failure reproduces")

		// Client resilience flags, mapped 1:1 onto ltspclient.Config.
		retries     = flag.Int("retries", 3, "client mode: max retries of transient failures (ltspclient MaxRetries)")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "client mode: base retry backoff (ltspclient BackoffBase)")
		retryBudget = flag.Duration("retry-budget", 10*time.Second, "client mode: total backoff sleep budget (ltspclient BackoffBudget)")
		reqTimeout  = flag.Duration("req-timeout", 30*time.Second, "client mode: per-attempt timeout, propagated to the server as its deadline (ltspclient RequestTimeout)")
		hedge       = flag.Duration("hedge", 0, "client mode: hedge compile requests after this delay, 0 = off (ltspclient HedgeDelay)")
		traceReq    = flag.Bool("trace", false, "client mode: span-trace the request end to end and print the merged client+server timeline")
	)
	flag.Parse()

	if *reproF != "" {
		if err := replayBundle(*reproF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("example                      (the paper's running example, Fig. 1)")
		for _, b := range workload.All() {
			for i := range b.Loops {
				fmt.Printf("%s/%s\n", b.Name, b.Loops[i].Name)
			}
		}
		return
	}

	hintMode, err := wire.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	backend, err := wire.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := ltsp.Options{
		Mode:            hintMode,
		Prefetch:        *prefetch,
		LatencyTolerant: *tolerant,
		BoostDelinquent: *tolerant,
		TripEstimate:    *trip,
		Backend:         backend,
	}

	if *dump != "" {
		if err := dumpRequest(*loopName, opts, *dump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *serverTo != "" {
		client, err := ltspclient.New(ltspclient.Config{
			BaseURL:        *serverTo,
			MaxRetries:     *retries,
			BackoffBase:    *backoff,
			BackoffBudget:  *retryBudget,
			RequestTimeout: *reqTimeout,
			HedgeDelay:     *hedge,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runClient(client, *loopName, *loopFile, opts, *simTrip, *explain || *explainJ, *traceReq); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	l, err := findLoop(*loopName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("=== source loop ===")
	fmt.Print(l.String())
	rep, err := hlo.Apply(l, hlo.Options{
		Mode: hintMode, Prefetch: *prefetch, TripEstimate: *trip,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlo:", err)
		os.Exit(1)
	}
	fmt.Printf("\n=== HLO prefetcher (mode %s, IIest=%d) ===\n", hintMode, rep.IIEst)
	for _, r := range rep.Refs {
		in := l.Body[r.ID]
		fmt.Printf("  body[%2d] %-34s hint=%-4s heuristic=%-16s", r.ID, trunc(in.String(), 34), r.Hint, r.Heuristic)
		if r.Distance > 0 {
			fmt.Printf(" prefetch-distance=%d", r.Distance)
			if r.L2Only {
				fmt.Print(" (L2 only)")
			}
		}
		fmt.Println()
	}
	fmt.Printf("  %d prefetches inserted, %d hints set\n", rep.PrefetchesAdded, rep.HintsSet)

	var tr *obs.Trace
	if *explain || *explainJ {
		tr = obs.New()
	}
	c, err := core.Pipeline(l, core.Options{
		LatencyTolerant: *tolerant,
		BoostDelinquent: *tolerant,
		Backend:         backend,
		Trace:           tr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
	fmt.Printf("\n=== pipeliner (backend %s) ===\n", c.Backend)
	fmt.Printf("  Resource II = %d, Recurrence II = %d, achieved II = %d, stages = %d\n",
		c.ResII, c.BaseRecII, c.FinalII, c.Stages)
	if c.ProvenII {
		fmt.Println("  (achieved II is provably optimal)")
	}
	if c.LatencyReduced {
		fmt.Println("  (fallback: non-critical latencies reduced to base for register allocation)")
	}
	for _, lr := range c.Loads {
		class := "non-critical"
		if lr.Critical {
			class = "critical"
		}
		fmt.Printf("  load body[%2d]: %-12s base=%2d scheduled=%2d d=%2d k=%d hint=%s\n",
			lr.ID, class, lr.BaseLat, lr.SchedLat, lr.ExtraD, lr.ClusterK, lr.Hint)
	}
	st := c.Assignment.Stats
	fmt.Printf("  registers: GR %d (rot %d), FR %d (rot %d), PR %d (rot %d)\n",
		st.TotalGR(), st.RotGR, st.TotalFR(), st.RotFR, st.TotalPR(), st.RotPR)

	if *verifyF {
		fmt.Printf("\n=== verification ===\n")
		if c.Schedule != nil {
			if err := verify.Schedule(machine.Itanium2(), c.Loop(), c.Schedule, c.Assignment); err != nil {
				fmt.Fprintln(os.Stderr, "verify (structural):", err)
				os.Exit(1)
			}
			fmt.Println("  structural: dependences, resources and register lifetimes re-derived and checked")
		} else {
			fmt.Println("  structural: compiled sequentially, no modulo schedule to check")
		}
		if err := verify.Kernel(l, c.Program, verify.Config{Seed: 1}); err != nil {
			fmt.Fprintln(os.Stderr, "verify (oracle):", err)
			os.Exit(1)
		}
		fmt.Println("  semantic: kernel matches the reference interpreter on seeded random inputs")
	}

	if *explain {
		fmt.Printf("\n=== decision trace ===\n")
		if err := tr.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "explain:", err)
			os.Exit(1)
		}
	}
	if *explainJ {
		data, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "explain-json:", err)
			os.Exit(1)
		}
		fmt.Printf("\n=== decision trace (JSON) ===\n%s\n", data)
	}

	fmt.Printf("\n=== kernel ===\n")
	fmt.Print(c.Program.Listing())
	if c.Stages <= 8 {
		fmt.Printf("\n=== conceptual pipeline (Figs. 2/4) ===\n")
		fmt.Print(c.Diagram(5))
	}
}

func findLoop(name string) (*ir.Loop, error) {
	if name == "example" {
		return exampleLoop(), nil
	}
	parts := strings.SplitN(name, "/", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("loop %q: want 'example' or <benchmark>/<loop>", name)
	}
	b := workload.ByName(parts[0])
	if b == nil {
		return nil, fmt.Errorf("no benchmark %q", parts[0])
	}
	for i := range b.Loops {
		if b.Loops[i].Name == parts[1] {
			return b.Loops[i].Gen(), nil
		}
	}
	return nil, fmt.Errorf("benchmark %s has no loop %q", parts[0], parts[1])
}

// dumpRequest writes the wire-format compile request for the named loop.
func dumpRequest(loopName string, opts ltsp.Options, path string) error {
	l, err := findLoop(loopName)
	if err != nil {
		return err
	}
	req, err := wire.NewCompileRequest(l, opts)
	if err != nil {
		return err
	}
	data, err := req.Canonical()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runClient submits a compile request (from a loop file or a named loop)
// to a running ltspd daemon through ltspclient — which retries transient
// failures and propagates deadlines — and prints the JSON responses.
// With explain it also fetches the stored decision trace; with traceReq
// the whole call runs under a span trace and the merged client+server
// timeline is printed at the end.
func runClient(client *ltspclient.Client, loopName, loopFile string, opts ltsp.Options, simTrip int64, explain, traceReq bool) error {
	var req *wire.CompileRequest
	if loopFile != "" {
		data, err := os.ReadFile(loopFile)
		if err != nil {
			return err
		}
		req = &wire.CompileRequest{}
		if err := json.Unmarshal(data, req); err != nil {
			return fmt.Errorf("%s: %v", loopFile, err)
		}
	} else {
		l, err := findLoop(loopName)
		if err != nil {
			return err
		}
		req, err = wire.NewCompileRequest(l, opts)
		if err != nil {
			return err
		}
	}

	ctx := context.Background()
	var ttr *telemetry.Trace
	if traceReq {
		ttr = telemetry.New("")
		ctx = telemetry.WithSpan(ctx, ttr, nil)
	}
	compiled, err := client.Compile(ctx, req)
	if err != nil {
		return err
	}
	if err := printJSON(compiled); err != nil {
		return err
	}

	if explain {
		trace, err := client.Trace(ctx, compiled.Hash)
		if err != nil {
			return err
		}
		if err := printJSON(trace); err != nil {
			return err
		}
	}

	if simTrip > 0 {
		simResp, err := client.Simulate(ctx, &wire.SimulateRequest{
			Version: wire.Version, Hash: compiled.Hash, Trip: simTrip,
		})
		if err != nil {
			return err
		}
		if err := printJSON(simResp); err != nil {
			return err
		}
	}
	if traceReq {
		if err := printRequestTrace(client, ttr); err != nil {
			return err
		}
	}
	return nil
}

// replayBundle re-runs a repro bundle captured by ltspd and reports
// whether the recorded failure still reproduces offline.
func replayBundle(path string) error {
	b, err := repro.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("bundle: kind=%s minimized=%v", b.Kind, b.Minimized)
	if b.Minimized {
		fmt.Printf(" (body %d -> %d instructions)", b.OrigBodyLen, b.MinBodyLen)
	}
	fmt.Println()
	if b.PanicValue != "" {
		fmt.Printf("recorded panic: %s\n", b.PanicValue)
	}
	if b.Error != "" {
		fmt.Printf("recorded error: %s\n", b.Error)
	}
	res, err := b.Replay()
	if err != nil {
		return err
	}
	if res.Reproduced {
		fmt.Printf("replay: failure REPRODUCED: %s\n", res.Detail)
		return nil
	}
	fmt.Printf("replay: not reproduced: %s\n", res.Detail)
	return nil
}

func printJSON(v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// exampleLoop is the paper's Fig. 1 running example with an L3 hint on the
// load.
func exampleLoop() *ir.Loop {
	l := ir.NewLoop("L1")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(r4, r5, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	ld.Mem.Hint = ir.HintL3
	ld.Comment = "v = a[i]"
	l.Append(ld)
	l.Append(ir.Add(r7, r4, r9))
	st := ir.St(r6, r7, 4, 4)
	st.Comment = "b[i] = v + 1"
	l.Append(st)
	l.Init(r5, 0x100000)
	l.Init(r6, 0x200000)
	l.Init(r9, 1)
	l.LiveOut = []ir.Reg{r5, r6}
	return l
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
