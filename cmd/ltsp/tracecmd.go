package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/ltspclient"
)

// printRequestTrace stitches the client's own spans to the server's
// retained slice of the same trace (fetched by ID) and prints one
// merged timeline: every line is a span, ordered by absolute start
// time, marked [C] (recorded in this process) or [S] (recorded by the
// server), with offsets relative to the earliest span.
func printRequestTrace(client *ltspclient.Client, tr *telemetry.Trace) error {
	type merged struct {
		origin string
		span   wire.SpanJSON
	}
	var spans []merged
	for _, s := range tr.Snapshot() {
		spans = append(spans, merged{"C", s})
	}

	// The server records its trace after the response is written, so an
	// immediate fetch can race the recording: retry briefly on not-found.
	var srv *wire.RequestTraceResponse
	var err error
	for i := 0; i < 20; i++ {
		srv, err = client.RequestTrace(context.Background(), tr.ID())
		if err == nil || !errors.Is(err, ltspclient.ErrNotFound) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	switch {
	case err == nil:
		for _, s := range srv.Spans {
			spans = append(spans, merged{"S", s})
		}
	case errors.Is(err, ltspclient.ErrNotFound):
		// Still printable: the client-side spans alone are useful.
		fmt.Printf("(server retained no trace %s — sampled out or cycled)\n", tr.ID())
	default:
		return err
	}
	if len(spans) == 0 {
		fmt.Printf("trace %s recorded no spans\n", tr.ID())
		return nil
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].span.Start < spans[j].span.Start })
	base := spans[0].span.Start
	fmt.Printf("\n=== request trace %s ===\n", tr.ID())
	if srv != nil {
		fmt.Printf("server: %s status=%d dur=%s\n",
			srv.Name, srv.Status, time.Duration(srv.DurNs).Round(time.Microsecond))
	}
	for _, m := range spans {
		s := m.span
		fmt.Printf("[%s] %10s %10s  %s%s\n",
			m.origin,
			"+"+time.Duration(s.Start-base).Round(time.Microsecond).String(),
			time.Duration(s.DurNs).Round(time.Microsecond).String(),
			s.Name,
			attrString(s.Attrs),
		)
	}
	return nil
}

// attrString renders span attributes deterministically (sorted keys).
func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%s", k, attrs[k])
	}
	return out
}
