// Command ltsp-sim compiles a benchmark-model loop under a chosen compiler
// configuration and simulates it on the cycle-accurate Itanium-2-class
// model, printing cycle accounting (the paper's Fig. 10 states), cache
// behaviour and OzQ statistics.
//
// Usage:
//
//	ltsp-sim -loop 429.mcf/refresh_potential -mode hlo -trip 3 -execs 5
//	ltsp-sim -loop 481.wrf/physics -mode none -cold -trip 48
//	ltsp-sim -loop 429.mcf/refresh_potential -account -stalls
//	ltsp-sim -loop 429.mcf/refresh_potential -trace-out kernel.json
//
// -account prints the Fig.-10 six-state accounting per execution,
// -stalls attributes data-stall cycles to individual load sites, and
// -trace-out writes a Chrome trace-event (catapult) timeline loadable at
// chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
	"ltsp/internal/sim"
	"ltsp/internal/workload"
)

func main() {
	var (
		loopName = flag.String("loop", "", "loop to simulate: <benchmark>/<loop>")
		mode     = flag.String("mode", "hlo", "hint mode: none | all-l3 | all-fp-l2 | hlo")
		tolerant = flag.Bool("tolerant", true, "enable latency-tolerant pipelining")
		trip     = flag.Int64("trip", 0, "trip count per execution (0 = the loop's modeled average)")
		execs    = flag.Int("execs", 3, "number of executions to simulate")
		cold     = flag.Bool("cold", false, "drop caches between executions (default: the loop's modeled behaviour)")
		seq      = flag.Bool("seq", false, "compile sequentially (no pipelining)")
		trace    = flag.Bool("trace", false, "print a cycle-by-cycle issue trace of the first execution")
		account  = flag.Bool("account", false, "print the Fig.-10 six-state accounting for each execution")
		stalls   = flag.Bool("stalls", false, "print the per-load-site stall attribution table")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event (catapult) JSON timeline to this file")
	)
	flag.Parse()

	if *loopName == "" {
		fmt.Fprintln(os.Stderr, "usage: ltsp-sim -loop <benchmark>/<loop> (see 'ltsp -list')")
		os.Exit(1)
	}
	spec, err := findSpec(*loopName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dropCaches := spec.Cold || *cold

	l := spec.Gen()
	hintMode := map[string]hlo.HintMode{
		"none": hlo.ModeNone, "all-l3": hlo.ModeAllL3,
		"all-fp-l2": hlo.ModeAllFPL2, "hlo": hlo.ModeHLO,
	}[*mode]
	if _, err := hlo.Apply(l, hlo.Options{
		Mode: hintMode, Prefetch: true, TripEstimate: spec.Ref.Avg(),
	}); err != nil {
		fmt.Fprintln(os.Stderr, "hlo:", err)
		os.Exit(1)
	}

	var prog *interp.Program
	if *seq {
		p, err := core.GenSequential(machine.Itanium2(), l)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seq:", err)
			os.Exit(1)
		}
		prog = p
		fmt.Printf("compiled sequentially: %d cycles/iteration\n", len(p.Groups))
	} else {
		c, err := core.Pipeline(l, core.Options{
			LatencyTolerant: *tolerant, BoostDelinquent: *tolerant,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipeline:", err)
			os.Exit(1)
		}
		prog = c.Program
		fmt.Printf("pipelined: II=%d, stages=%d\n", c.FinalII, c.Stages)
	}

	tripCount := *trip
	if tripCount <= 0 {
		tripCount = int64(spec.Ref.Avg())
		if tripCount < 1 {
			tripCount = 1
		}
	}

	simCfg := sim.DefaultConfig()
	if *trace {
		simCfg.Trace = os.Stdout
		*execs = 1 // tracing multiple executions would flood the terminal
	}
	var tl *obs.Timeline
	if *traceOut != "" {
		tl = obs.NewTimeline(0)
		simCfg.Timeline = tl
	}
	runner := sim.NewRunner(simCfg)
	mem := interp.NewMemory()
	spec.InitMem(mem)
	var total sim.Accounting
	var loads [5]int64
	var ozqStalls int64
	ozqPeak := 0
	var perExec []sim.Accounting
	siteTable := map[int]sim.SiteStall{}
	for i := 0; i < *execs; i++ {
		if dropCaches {
			runner.DropCaches()
		}
		r, err := runner.Run(prog, tripCount, mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sim:", err)
			os.Exit(1)
		}
		total.Add(r.Acct)
		perExec = append(perExec, r.Acct)
		mergeSites(siteTable, r)
		for lv := range loads {
			loads[lv] += r.LoadsByLevel[lv]
		}
		ozqStalls += r.OzQFullStalls
		if r.OzQPeak > ozqPeak {
			ozqPeak = r.OzQPeak
		}
	}

	fmt.Printf("\n%d executions x trip %d (%s caches)\n", *execs, tripCount,
		map[bool]string{true: "cold", false: "warm"}[dropCaches])
	fmt.Printf("  total cycles        %10d  (%.1f per source iteration)\n",
		total.Total, float64(total.Total)/float64(int64(*execs)*tripCount))
	fmt.Printf("  unstalled execution %10d  (%4.1f%%)\n", total.Unstalled, pct(total.Unstalled, total.Total))
	fmt.Printf("  BE_EXE_BUBBLE       %10d  (%4.1f%%)\n", total.ExeBubble, pct(total.ExeBubble, total.Total))
	fmt.Printf("  BE_L1D_FPU_BUBBLE   %10d  (%4.1f%%)\n", total.L1DFPUBubble, pct(total.L1DFPUBubble, total.Total))
	fmt.Printf("  BE_RSE_BUBBLE       %10d  (%4.1f%%)\n", total.RSEBubble, pct(total.RSEBubble, total.Total))
	fmt.Printf("  BE_FLUSH_BUBBLE     %10d  (%4.1f%%)\n", total.FlushBubble, pct(total.FlushBubble, total.Total))
	fmt.Printf("  BACK_END_BUBBLE.FE  %10d  (%4.1f%%)\n", total.FEBubble, pct(total.FEBubble, total.Total))
	fmt.Printf("\n  demand loads by level: L1 %d, L2 %d, L3 %d, memory %d\n",
		loads[1], loads[2], loads[3], loads[4])
	fmt.Printf("  OzQ: peak occupancy %d, full-stall cycles %d\n", ozqPeak, ozqStalls)

	if *account {
		fmt.Printf("\n=== per-execution accounting (Fig. 10 states) ===\n")
		fmt.Printf("  %-6s %12s %12s %12s %12s %12s %12s %12s\n",
			"exec", "total", "unstalled", "EXE", "L1D_FPU", "RSE", "FLUSH", "FE")
		for i, a := range perExec {
			fmt.Printf("  %-6d %12d %12d %12d %12d %12d %12d %12d\n",
				i, a.Total, a.Unstalled, a.ExeBubble, a.L1DFPUBubble, a.RSEBubble, a.FlushBubble, a.FEBubble)
		}
		fmt.Printf("  %-6s %12d %12d %12d %12d %12d %12d %12d\n",
			"all", total.Total, total.Unstalled, total.ExeBubble, total.L1DFPUBubble,
			total.RSEBubble, total.FlushBubble, total.FEBubble)
	}

	if *stalls {
		fmt.Printf("\n=== stall attribution by load site ===\n")
		rows := sortedSites(siteTable)
		if len(rows) == 0 {
			fmt.Println("  (no load activity recorded)")
		} else {
			fmt.Printf("  %-4s %-28s %10s %8s %8s %10s %8s %7s\n",
				"site", "instruction", "stall-cyc", "events", "misses", "ozq-cyc", "avg-lat", "obs-k")
			for _, s := range rows {
				fmt.Printf("  %-4d %-28s %10d %8d %8d %10d %8.1f %7.2f\n",
					s.ID, trunc(siteName(l, s.ID), 28), s.StallCycles, s.StallEvents,
					s.Misses, s.OzQStallCycles, s.AvgLatency, s.ObservedK)
			}
		}
	}

	if tl != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		if err := tl.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  wrote %d timeline events to %s", tl.Len(), *traceOut)
		if n := tl.Dropped(); n > 0 {
			fmt.Printf(" (%d dropped beyond the event limit)", n)
		}
		fmt.Println("  — open in chrome://tracing or ui.perfetto.dev")
	}
}

// mergeSites folds one execution's stall attribution into the cross-run
// table, recomputing the weighted average latency and observed clustering
// factor.
func mergeSites(table map[int]sim.SiteStall, r *sim.Result) {
	for _, s := range r.SiteStalls() {
		acc := table[s.ID]
		if acc.Loads+s.Loads > 0 {
			acc.AvgLatency = (acc.AvgLatency*float64(acc.Loads) + s.AvgLatency*float64(s.Loads)) /
				float64(acc.Loads+s.Loads)
		}
		acc.ID = s.ID
		acc.StallCycles += s.StallCycles
		acc.StallEvents += s.StallEvents
		acc.OzQStallCycles += s.OzQStallCycles
		acc.Loads += s.Loads
		for lv := range acc.Levels {
			acc.Levels[lv] += s.Levels[lv]
		}
		acc.Misses += s.Misses
		if acc.StallEvents > 0 {
			acc.ObservedK = float64(acc.Misses) / float64(acc.StallEvents)
		}
		table[s.ID] = acc
	}
}

func sortedSites(table map[int]sim.SiteStall) []sim.SiteStall {
	out := make([]sim.SiteStall, 0, len(table))
	for _, s := range table {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StallCycles != out[b].StallCycles {
			return out[a].StallCycles > out[b].StallCycles
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// siteName labels a load site with its source comment when the loop has
// one, falling back to the instruction text.
func siteName(l *ir.Loop, id int) string {
	if id < 0 || id >= len(l.Body) {
		return fmt.Sprintf("body[%d]", id)
	}
	in := l.Body[id]
	if in.Comment != "" {
		return in.Comment
	}
	return in.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func findSpec(name string) (*workload.LoopSpec, error) {
	parts := strings.SplitN(name, "/", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("loop %q: want <benchmark>/<loop>", name)
	}
	b := workload.ByName(parts[0])
	if b == nil {
		return nil, fmt.Errorf("no benchmark %q", parts[0])
	}
	for i := range b.Loops {
		if b.Loops[i].Name == parts[1] {
			return &b.Loops[i], nil
		}
	}
	return nil, fmt.Errorf("benchmark %s has no loop %q", parts[0], parts[1])
}
