// Command ltsp-bench regenerates the paper's evaluation: every table and
// figure of the CGO 2008 paper "Latency-Tolerant Software Pipelining in a
// Production Compiler" has a corresponding experiment that prints the
// measured values next to the paper's reported ones.
//
// Usage:
//
//	ltsp-bench                 # run everything
//	ltsp-bench -run fig7       # one experiment: fig5 fig7 fig8 fig9 fig10
//	                           # casestudy regstats compiletime
//	ltsp-bench -json           # machine-readable results on stdout
//
// Remote mode sweeps the whole workload suite through a running ltspd
// daemon instead of compiling in-process, batched and retried by the
// resilient ltspclient package:
//
//	ltsp-bench -server http://localhost:8347
//	ltsp-bench -server http://localhost:8347 -retries 5 -req-timeout 1m
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"ltsp/internal/experiments"
	"ltsp/ltspclient"
)

// fig5Out bundles the analytic model with its simulator validation so the
// pair renders (and marshals) as one experiment.
type fig5Out struct {
	Analytic   []experiments.Fig5Point      `json:"analytic"`
	Validation []experiments.Fig5Validation `json:"validation"`
}

func (f fig5Out) String() string { return experiments.FormatFig5(f.Analytic, f.Validation) }

// ablationOut bundles the three ablation studies.
type ablationOut struct {
	OzQ         []experiments.OzQPoint       `json:"ozq"`
	RotReg      []experiments.RotRegPoint    `json:"rot_reg"`
	RotVsUnroll []experiments.RotVsUnrollRow `json:"rot_vs_unroll"`
}

func (a ablationOut) String() string {
	return experiments.FormatAblations(a.OzQ, a.RotReg) + "\n" +
		experiments.FormatRotVsUnroll(a.RotVsUnroll)
}

// jsonRecord is one element of the -json output array. Result is the
// experiment's native result struct, whose fields carry both measured and
// paper-reported values.
type jsonRecord struct {
	Experiment  string  `json:"experiment"`
	WallSeconds float64 `json:"wall_seconds"`
	Result      any     `json:"result"`
}

func main() {
	var run = flag.String("run", "all", "experiment to run: all | fig5 | fig7 | fig8 | fig9 | fig10 | casestudy | regstats | compiletime | versioning | sampling | ablation | oracle-gap")
	var jsonOut = flag.Bool("json", false, "emit machine-readable JSON results on stdout instead of text")
	var workers = flag.Int("workers", 0, "evaluation worker-pool width (0 = GOMAXPROCS, 1 = sequential)")
	var cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")

	// Remote mode, mapped 1:1 onto ltspclient.Config.
	var server = flag.String("server", "", "sweep the workload suite through a running ltspd daemon at this base URL instead of running experiments locally")
	var retries = flag.Int("retries", 3, "remote mode: max retries of transient failures (ltspclient MaxRetries)")
	var backoff = flag.Duration("backoff", 50*time.Millisecond, "remote mode: base retry backoff (ltspclient BackoffBase)")
	var retryBudget = flag.Duration("retry-budget", 10*time.Second, "remote mode: total backoff sleep budget (ltspclient BackoffBudget)")
	var reqTimeout = flag.Duration("req-timeout", 30*time.Second, "remote mode: per-attempt timeout, propagated to the server as its deadline (ltspclient RequestTimeout)")
	var batchTimeout = flag.Duration("batch-timeout", 5*time.Minute, "remote mode: per-batch timeout (ltspclient BatchTimeout) and overall sweep deadline")
	var wireMode = flag.String("wire", "json", "remote mode: transfer encoding, json | binary (ltspclient Wire; binary falls back to JSON on servers that predate it)")
	flag.Parse()

	if *server != "" {
		client, err := ltspclient.New(ltspclient.Config{
			BaseURL:        *server,
			MaxRetries:     *retries,
			BackoffBase:    *backoff,
			BackoffBudget:  *retryBudget,
			RequestTimeout: *reqTimeout,
			BatchTimeout:   *batchTimeout,
			Wire:           *wireMode,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runRemote(client, *batchTimeout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(n)] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"fig5", func() (fmt.Stringer, error) {
			v, err := experiments.RunFig5Validation()
			if err != nil {
				return nil, err
			}
			return fig5Out{Analytic: experiments.AnalyticFig5(), Validation: v}, nil
		}},
		{"fig7", func() (fmt.Stringer, error) { return experiments.RunFig7() }},
		{"fig8", func() (fmt.Stringer, error) { return experiments.RunFig8() }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.RunFig9() }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.RunFig10() }},
		{"casestudy", func() (fmt.Stringer, error) { return experiments.RunCaseStudy() }},
		{"regstats", func() (fmt.Stringer, error) { return experiments.RunRegStats() }},
		{"compiletime", func() (fmt.Stringer, error) { return experiments.RunCompileTime() }},
		{"versioning", func() (fmt.Stringer, error) { return experiments.RunVersioning() }},
		{"sampling", func() (fmt.Stringer, error) { return experiments.RunMissSampling() }},
		{"ablation", func() (fmt.Stringer, error) {
			ozq, err := experiments.RunOzQAblation()
			if err != nil {
				return nil, err
			}
			rot, err := experiments.RunRotRegAblation()
			if err != nil {
				return nil, err
			}
			rvu, err := experiments.RunRotVsUnroll()
			if err != nil {
				return nil, err
			}
			return ablationOut{OzQ: ozq, RotReg: rot, RotVsUnroll: rvu}, nil
		}},
		{"oracle-gap", func() (fmt.Stringer, error) { return experiments.RunOracleGap() }},
	}

	var records []jsonRecord
	ran := 0
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.fn()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *jsonOut {
			records = append(records, jsonRecord{
				Experiment:  e.name,
				WallSeconds: elapsed.Seconds(),
				Result:      res,
			})
		} else {
			fmt.Printf("──── %s (%.1fs) %s\n\n%s\n", e.name, elapsed.Seconds(),
				strings.Repeat("─", 50), res)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%s\n", *run)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
	}
}
