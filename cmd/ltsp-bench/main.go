// Command ltsp-bench regenerates the paper's evaluation: every table and
// figure of the CGO 2008 paper "Latency-Tolerant Software Pipelining in a
// Production Compiler" has a corresponding experiment that prints the
// measured values next to the paper's reported ones.
//
// Usage:
//
//	ltsp-bench                 # run everything
//	ltsp-bench -run fig7       # one experiment: fig5 fig7 fig8 fig9 fig10
//	                           # casestudy regstats compiletime
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ltsp/internal/experiments"
)

func main() {
	var run = flag.String("run", "all", "experiment to run: all | fig5 | fig7 | fig8 | fig9 | fig10 | casestudy | regstats | compiletime | versioning | sampling | ablation")
	flag.Parse()

	want := map[string]bool{}
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(n)] = true
	}
	all := want["all"]

	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"fig5", func() (fmt.Stringer, error) {
			v, err := experiments.RunFig5Validation()
			if err != nil {
				return nil, err
			}
			return stringer(experiments.FormatFig5(experiments.AnalyticFig5(), v)), nil
		}},
		{"fig7", func() (fmt.Stringer, error) { return experiments.RunFig7() }},
		{"fig8", func() (fmt.Stringer, error) { return experiments.RunFig8() }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.RunFig9() }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.RunFig10() }},
		{"casestudy", func() (fmt.Stringer, error) { return experiments.RunCaseStudy() }},
		{"regstats", func() (fmt.Stringer, error) { return experiments.RunRegStats() }},
		{"compiletime", func() (fmt.Stringer, error) { return experiments.RunCompileTime() }},
		{"versioning", func() (fmt.Stringer, error) { return experiments.RunVersioning() }},
		{"sampling", func() (fmt.Stringer, error) { return experiments.RunMissSampling() }},
		{"ablation", func() (fmt.Stringer, error) {
			ozq, err := experiments.RunOzQAblation()
			if err != nil {
				return nil, err
			}
			rot, err := experiments.RunRotRegAblation()
			if err != nil {
				return nil, err
			}
			rvu, err := experiments.RunRotVsUnroll()
			if err != nil {
				return nil, err
			}
			return stringer(experiments.FormatAblations(ozq, rot) + "\n" +
				experiments.FormatRotVsUnroll(rvu)), nil
		}},
	}

	ran := 0
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		start := time.Now()
		res, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("──── %s (%.1fs) %s\n\n%s\n", e.name, time.Since(start).Seconds(),
			strings.Repeat("─", 50), res)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%s\n", *run)
		os.Exit(1)
	}
}

type stringer string

func (s stringer) String() string { return string(s) }
