package main

import (
	"context"
	"fmt"
	"time"

	"ltsp"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
	"ltsp/ltspclient"
)

// remoteChunk bounds one compile-batch request; it matches the server's
// default MaxBatchItems so a full workload sweep never trips the
// too_large rejection.
const remoteChunk = 64

// runRemote compiles the whole benchmark-model workload suite against a
// running ltspd daemon through ltspclient's batched, retrying path, and
// prints a per-loop outcome summary plus the client's resilience
// counters. It exercises exactly the surface a build farm would: many
// loops, chunked batches, per-item errors, shared artifact cache.
func runRemote(client *ltspclient.Client, timeout time.Duration) error {
	type entry struct {
		name string
		item wire.CompileItem
	}
	var entries []entry
	for _, b := range workload.All() {
		for i := range b.Loops {
			req, err := wire.NewCompileRequest(b.Loops[i].Gen(), ltsp.Options{
				Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 1000,
			})
			if err != nil {
				return fmt.Errorf("%s/%s: %v", b.Name, b.Loops[i].Name, err)
			}
			entries = append(entries, entry{
				name: b.Name + "/" + b.Loops[i].Name,
				item: wire.CompileItem{Loop: req.Loop, Options: req.Options},
			})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	var ok, failed, cached int
	outcomes := map[string]int{}
	for base := 0; base < len(entries); base += remoteChunk {
		end := base + remoteChunk
		if end > len(entries) {
			end = len(entries)
		}
		items := make([]wire.CompileItem, 0, end-base)
		for _, e := range entries[base:end] {
			items = append(items, e.item)
		}
		resp, err := client.CompileBatch(ctx, items)
		if err != nil {
			return fmt.Errorf("batch [%d,%d): %w", base, end, err)
		}
		for j, item := range resp.Items {
			name := entries[base+j].name
			if item.Error != "" {
				failed++
				fmt.Printf("  %-40s ERROR %s (code %s, retryable %v)\n", name, item.Error, item.ErrorCode, item.Retryable)
				continue
			}
			ok++
			outcomes[item.Outcome]++
			if item.Cached {
				cached++
			}
			fmt.Printf("  %-40s II=%-3d stages=%-2d outcome=%s\n", name, item.II, item.Stages, item.Outcome)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\n%d loops in %.2fs: %d ok (%d cached), %d failed\n", len(entries), elapsed.Seconds(), ok, cached, failed)
	for o, n := range outcomes {
		fmt.Printf("  outcome %-24s %d\n", o, n)
	}
	st := client.Stats()
	fmt.Printf("client: %d attempts, %d retries, slept %s in backoff\n", st.Attempts, st.Retries, st.BackoffSlept)
	if failed > 0 {
		return fmt.Errorf("%d loops failed to compile remotely", failed)
	}
	return nil
}
