// Command benchguard is the CI benchmark-regression gate. It measures
// the two compile-speed canaries —
//
//	compile_loop_ns_op:   one ltsp.Compile of the paper's running example
//	                      (the single-thread scheduler hot path)
//	compile_time_seconds: wall clock of the CompileTime experiment over
//	                      CPU2006 (the fleet-throughput path)
//
// — and compares them against a checked-in baseline, exiting nonzero
// when either regresses by more than the threshold. Medians of several
// repetitions keep CI-runner noise out of the verdict.
//
// Usage:
//
//	benchguard -baseline BENCH_baseline.json            # gate (CI)
//	benchguard -baseline BENCH_baseline.json -write     # refresh baseline
//	benchguard -threshold 20 -workers 4                 # explicit knobs
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ltsp"
	"ltsp/internal/cluster"
	"ltsp/internal/experiments"
	"ltsp/internal/ir"
	"ltsp/internal/server"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// Baseline is the checked-in measurement record.
type Baseline struct {
	CompileLoopNsOp float64 `json:"compile_loop_ns_op"`
	CompileTimeSec  float64 `json:"compile_time_seconds"`
	// DiskHitNsOp is one artifact read from the persistent store —
	// decode + checksum + integrity check — the warm-restart hot path.
	DiskHitNsOp float64 `json:"disk_hit_ns_op,omitempty"`
	// RequestDecodeRatio is JSON-decode ns over binary-decode ns for one
	// sweep of the full workload corpus of compile requests; gated at an
	// absolute >= 5x floor, recorded here for trend tracking.
	RequestDecodeRatio float64 `json:"request_decode_ratio,omitempty"`
	// ArtifactDecodeRatio is the same ratio for the artifact transfer
	// envelope (peer cache-fill payloads); floor 3x.
	ArtifactDecodeRatio float64 `json:"artifact_decode_ratio,omitempty"`
	// CacheHitAllocs is heap allocations per hot-path compile cache hit
	// (testing.AllocsPerRun over the server's HTTP surface).
	CacheHitAllocs float64 `json:"cache_hit_allocs,omitempty"`
	// ProvenanceAppendNsOp is one provenance-chain append on the compile
	// path (sync index update + queue handoff); gated at an absolute <1%
	// of compile_loop_ns_op, recorded here for trend tracking.
	ProvenanceAppendNsOp float64 `json:"provenance_append_ns_op,omitempty"`
	// Cores records GOMAXPROCS at measurement time: compile_time_seconds
	// scales with it, so cross-machine comparisons need the context.
	Cores int    `json:"cores"`
	Note  string `json:"note,omitempty"`
}

// exampleLoop is the paper's running example (ld/add/st with unit
// strides), the same shape BenchmarkCompileLoop uses.
func exampleLoop() *ir.Loop {
	l := ir.NewLoop("copyadd")
	v, bs, bd, r, kr := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, kr))
	st := ir.St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x100000)
	l.Init(bd, 0x200000)
	l.Init(kr, 1)
	l.LiveOut = []ir.Reg{bs, bd}
	return l
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// measureCompileLoop returns the median ns per single-thread compile of
// the running example.
func measureCompileLoop(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := ltsp.Compile(exampleLoop(), opts); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureCompileTime returns the median wall-clock seconds of the
// CompileTime experiment.
func measureCompileTime(reps int) float64 {
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := experiments.RunCompileTime(); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: compiletime: %v\n", err)
			os.Exit(1)
		}
		samples = append(samples, time.Since(start).Seconds())
	}
	return median(samples)
}

// measureVerify returns the median ns of one full verification pass —
// structural re-derivation plus the semantic differential oracle — of
// the running example's compilation. Amortized by the default sampling
// rate, this is what trust-but-verify adds to each compile.
func measureVerify(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	c, err := ltsp.Compile(exampleLoop(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
		os.Exit(1)
	}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: verify rejected a clean compilation: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureShedAdmit returns the median ns per admission-control decision
// on a primed shedder — the cost the resilience layer adds to every
// uncontended request before it reaches a worker slot.
func measureShedAdmit(reps, iters int) float64 {
	sh := server.NewShedder(4)
	sh.Prime(5 * time.Millisecond)
	samples := make([]float64, 0, reps)
	var sink time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			wait, ok := sh.Admit(time.Second, 1)
			if !ok {
				fmt.Fprintln(os.Stderr, "benchguard: primed shedder rejected an uncontended request")
				os.Exit(1)
			}
			sink += wait
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	_ = sink
	return median(samples)
}

// measureCacheHit returns the median ns per in-memory artifact-cache
// hit — the fast path every repeated compile request takes, which the
// disk/peer layering underneath must not slow down.
func measureCacheHit(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	c, err := ltsp.Compile(exampleLoop(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
		os.Exit(1)
	}
	cache := server.NewArtifactCache(16, &server.Metrics{})
	const key = "bench"
	cache.Add(key, &server.Artifact{Compiled: c, Size: 1})
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, ok := cache.Get(key); !ok {
				fmt.Fprintln(os.Stderr, "benchguard: cache lost its only artifact")
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureUntracedPath returns the median ns of one request's worth of
// tracing plumbing when the request is NOT traced: the per-stage
// context lookups and nil-receiver span calls the server executes
// unconditionally. This is the cost every request pays for the
// telemetry layer existing at all.
func measureUntracedPath(reps, iters int) float64 {
	ctx := context.Background()
	samples := make([]float64, 0, reps)
	var sink int
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			// Six stage sites per request (queue wait, mem lookup, disk
			// read, peer leg, compile, verify), each a context lookup plus
			// no-op span calls on the nil trace.
			for k := 0; k < 6; k++ {
				tr, parent := telemetry.FromContext(ctx)
				s := tr.Start("stage", parent)
				s.SetAttr("outcome", "hit")
				s.End()
				if s != nil {
					sink++
				}
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	_ = sink
	return median(samples)
}

// measureTracedPath returns the median ns of recording one fully traced
// request — trace + root + the per-stage spans with attributes, finish,
// and retention in a registry. Amortized by the default sampling rate,
// this is what background span sampling adds to each request.
func measureTracedPath(reps, iters int) float64 {
	reg := telemetry.NewRegistry(0, 0)
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			tr := telemetry.New("")
			root := tr.StartRemote("server POST /v2/compile", "")
			root.SetAttr("request_id", "bench-1")
			for _, name := range [...]string{"queue_wait", "mem_lookup", "compile", "verify"} {
				s := tr.Start(name, root)
				s.SetAttr("outcome", "ok")
				s.End()
			}
			root.End()
			tr.Finish("POST /v2/compile", 200)
			reg.Record(tr)
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureDiskHit returns the median ns per persistent-store read of the
// running example's artifact — file read, decode, checksum — i.e. the
// per-artifact cost of a warm restart.
func measureDiskHit(reps, iters int) float64 {
	dir, err := os.MkdirTemp("", "benchguard-store")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()

	loopData, err := ir.EncodeLoop(exampleLoop())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	req := wire.CompileRequest{Version: wire.Version, Loop: loopData,
		Options: wire.Options{Mode: "hlo", Prefetch: true, LatencyTolerant: true}}
	canon, err := req.Canonical()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	hash := wire.HashOf(canon)
	if err := st.Put(&store.Entry{
		Hash:     hash,
		Request:  canon,
		Response: json.RawMessage(`{"hash":"` + hash + `","outcome":"pipelined"}`),
		Trace:    json.RawMessage(`[]`),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := st.Get(hash); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: disk hit: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureProvenanceAppend returns the median ns per provenance-chain
// append — the synchronous cost the tamper-evidence layer adds to every
// artifact creation. The durable chained write happens on a background
// writer; what is measured here is exactly what the compile path pays:
// the in-memory index update plus the queue handoff.
func measureProvenanceAppend(reps, iters int) float64 {
	dir, err := os.MkdirTemp("", "benchguard-prov")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	// Queue sized to the iteration count so no append ever takes the
	// (cheaper) overflow-drop path and distorts the measurement.
	prov, err := store.OpenLog(dir, store.LogOptions{QueueDepth: iters + 1})
	if err != nil {
		fatal(err)
	}
	defer prov.Close()

	// Distinct hashes, precomputed outside the timed loop: the steady
	// state is one fresh artifact per append, not re-stamping one hash.
	hashes := make([]string, 1024)
	for i := range hashes {
		hashes[i] = fmt.Sprintf("%064x", i)
	}
	sum := strings.Repeat("cd", 32)
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			prov.Append(hashes[i%len(hashes)], store.SourceCompile, sum)
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
		// Drain between repetitions so a backed-up writer never turns
		// queue pressure from one rep into noise in the next.
		prov.Barrier()
	}
	if st := prov.Stats(); st.Dropped != 0 {
		fatal(fmt.Errorf("provenance benchmark dropped %d records; queue sizing bug", st.Dropped))
	}
	return median(samples)
}

// measureHealthAllocs returns heap allocations per request-path health
// consultation: one atomic ring load plus the per-replica Eligible
// checks a hedged fill performs before dialing. The prober and the
// membership poller run off the request path; this is the part every
// request pays, and it must stay allocation-free.
func measureHealthAllocs() float64 {
	h := cluster.NewHealth(cluster.HealthConfig{Seed: 1})
	h.SetPeers([]string{"a", "b", "c"})
	h.ReportFailure("b") // a mixed map, not the all-alive fast case
	m := cluster.NewMembership(cluster.MembershipConfig{
		Source: cluster.StaticSource{{ID: "a", Addr: "ua"}, {ID: "b", Addr: "ub"}, {ID: "c", Addr: "uc"}},
		Self:   cluster.Peer{ID: "a", Addr: "ua"},
		Health: h,
	})
	defer m.Close()
	return testing.AllocsPerRun(2000, func() {
		ring := m.Ring()
		if ring.Len() == 0 {
			fatal(fmt.Errorf("membership lost its ring"))
		}
		if !h.Eligible("a") || !h.Eligible("b") || !h.Eligible("c") {
			fatal(fmt.Errorf("unexpectedly ineligible peer"))
		}
	})
}

// guardSink defeats dead-code elimination in the decode measurements.
var guardSink any

// measureRequestDecodeRatio returns median(JSON decode ns) over
// median(binary decode ns) for one sweep of every workload loop's
// compile request — the same definitions as BenchmarkDecodeJSON /
// BenchmarkDecodeBinary in internal/wire/binary: bytes in, validated
// loop + checked options out.
func measureRequestDecodeRatio(reps int) float64 {
	var jsonBodies, binBodies [][]byte
	for _, b := range workload.All() {
		for _, spec := range b.Loops {
			l := spec.Gen()
			req, err := wire.NewCompileRequest(l, ltsp.Options{Prefetch: true, LatencyTolerant: true})
			if err != nil {
				fatal(err)
			}
			j, err := json.Marshal(req)
			if err != nil {
				fatal(err)
			}
			frame, err := binary.EncodeCompileRequest(nil, l, req.Options)
			if err != nil {
				fatal(err)
			}
			jsonBodies = append(jsonBodies, j)
			binBodies = append(binBodies, frame)
		}
	}
	jsonNs := make([]float64, 0, reps)
	binNs := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, body := range jsonBodies {
			var req wire.CompileRequest
			if err := json.Unmarshal(body, &req); err != nil {
				fatal(err)
			}
			l, err := ir.DecodeLoop(req.Loop)
			if err != nil {
				fatal(err)
			}
			if _, err := req.Options.ToOptions(); err != nil {
				fatal(err)
			}
			guardSink = l
		}
		jsonNs = append(jsonNs, float64(time.Since(start).Nanoseconds()))

		start = time.Now()
		for _, body := range binBodies {
			req, err := binary.DecodeCompileRequest(body)
			if err != nil {
				fatal(err)
			}
			if _, err := req.Options.ToOptions(); err != nil {
				fatal(err)
			}
			guardSink = req
		}
		binNs = append(binNs, float64(time.Since(start).Nanoseconds()))
	}
	return median(jsonNs) / median(binNs)
}

// measureArtifactDecodeRatio is the same ratio for the artifact transfer
// envelope — the payload of peer cache-fills — with realistically sized
// sections (canonical request, multi-KB listing, decision trace).
func measureArtifactDecodeRatio(reps, iters int) float64 {
	l := workload.All()[0].Loops[0].Gen()
	req, err := wire.NewCompileRequest(l, ltsp.Options{LatencyTolerant: true})
	if err != nil {
		fatal(err)
	}
	canon, err := req.Canonical()
	if err != nil {
		fatal(err)
	}
	respJSON, err := json.Marshal(&wire.CompileResponse{
		Hash: strings.Repeat("ab", 32), Pipelined: true, Outcome: "pipelined",
		II: 4, Stages: 6, ResII: 4, RecII: 2,
		Listing: strings.Repeat("  (p16) ld8 r32 = [r5], 8\n", 200),
	})
	if err != nil {
		fatal(err)
	}
	art := &wire.ArtifactResponse{
		Hash:        strings.Repeat("ab", 32),
		Request:     canon,
		Response:    respJSON,
		Trace:       json.RawMessage(`[{"stage":"classify","loads":4},{"stage":"ii_search","ii":4}]`),
		Verify:      wire.ArtifactVerify{Sampled: true, Passed: true},
		CreatedUnix: 1754700000,
	}
	jsonBody, err := json.Marshal(art)
	if err != nil {
		fatal(err)
	}
	binBody := binary.EncodeArtifact(nil, art)

	jsonNs := make([]float64, 0, reps)
	binNs := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			var ar wire.ArtifactResponse
			if err := json.Unmarshal(jsonBody, &ar); err != nil {
				fatal(err)
			}
			guardSink = &ar
		}
		jsonNs = append(jsonNs, float64(time.Since(start).Nanoseconds())/float64(iters))

		start = time.Now()
		for i := 0; i < iters; i++ {
			ar, err := binary.DecodeArtifact(binBody)
			if err != nil {
				fatal(err)
			}
			guardSink = ar
		}
		binNs = append(binNs, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(jsonNs) / median(binNs)
}

// reusableBody lets one request body be rewound and re-served without
// allocating a fresh reader per request.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

// discardWriter is an http.ResponseWriter that swallows the response; the
// header map is allocated once and reused across requests.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

// measureCacheHitAllocs returns heap allocations per request on the
// server's prerendered hot path: a byte-identical repeat of a compile
// request served through the full HTTP surface (routing, negotiation,
// body read, hot-map lookup, response write). Tracing and verification
// sampling are disabled so the measurement is the steady-state serve,
// not the sampled slice.
func measureCacheHitAllocs() float64 {
	srv := server.New(server.Config{TraceSample: -1, VerifySample: -1})
	loopData, err := ir.EncodeLoop(exampleLoop())
	if err != nil {
		fatal(err)
	}
	body, err := json.Marshal(&wire.CompileRequest{Version: wire.Version, Loop: loopData,
		Options: wire.Options{Mode: "hlo", Prefetch: true, LatencyTolerant: true}})
	if err != nil {
		fatal(err)
	}
	rb := reusableBody{bytes.NewReader(body)}
	req := httptest.NewRequest(http.MethodPost, "/v2/compile", nil)
	req.Header.Set("Content-Type", "application/json")
	req.Body = rb

	// First serve compiles and renders the hot entry; second proves the
	// hot path is actually taken (Cached=true) before anything is gated.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		rb.Seek(0, io.SeekStart)
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			fatal(fmt.Errorf("hot-path warmup: status %d: %s", rec.Code, rec.Body.String()))
		}
		if i == 1 && !strings.Contains(rec.Body.String(), `"cached": true`) {
			fatal(fmt.Errorf("repeat request was not served from the hot map: %s", rec.Body.String()))
		}
	}
	w := &discardWriter{h: make(http.Header)}
	return testing.AllocsPerRun(2000, func() {
		rb.Seek(0, io.SeekStart)
		srv.ServeHTTP(w, req)
	})
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write)")
		write        = flag.Bool("write", false, "write the measured values as the new baseline instead of gating")
		threshold    = flag.Float64("threshold", 20, "max tolerated regression in percent")
		workers      = flag.Int("workers", 0, "experiment worker-pool width (0 = GOMAXPROCS)")
		loopReps     = flag.Int("loop-reps", 5, "repetitions of the compile-loop measurement")
		loopIters    = flag.Int("loop-iters", 1000, "compiles per compile-loop repetition")
		ctReps       = flag.Int("ct-reps", 3, "repetitions of the compile-time experiment")
	)
	flag.Parse()
	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}

	loopNs := measureCompileLoop(*loopReps, *loopIters)
	ctSec := measureCompileTime(*ctReps)
	shedNs := measureShedAdmit(*loopReps, 100000)
	verifyNs := measureVerify(*loopReps, 200)
	hitNs := measureCacheHit(*loopReps, 100000)
	diskNs := measureDiskHit(*loopReps, 500)
	untracedNs := measureUntracedPath(*loopReps, 100000)
	tracedNs := measureTracedPath(*loopReps, 10000)
	reqRatio := measureRequestDecodeRatio(*loopReps)
	artRatio := measureArtifactDecodeRatio(*loopReps, 2000)
	hitAllocs := measureCacheHitAllocs()
	provNs := measureProvenanceAppend(*loopReps, 20000)
	healthAllocs := measureHealthAllocs()
	fmt.Printf("measured: compile_loop %.0f ns/op, compile_time %.3f s, shed_admit %.1f ns/op, verify %.0f ns/op, cache_hit %.1f ns/op, disk_hit %.0f ns/op, untraced %.1f ns/op, traced %.0f ns/op, req_decode_ratio %.1fx, artifact_decode_ratio %.1fx, cache_hit_allocs %.0f, provenance_append %.1f ns/op, health_allocs %.0f (workers %d, cores %d)\n",
		loopNs, ctSec, shedNs, verifyNs, hitNs, diskNs, untracedNs, tracedNs, reqRatio, artRatio, hitAllocs, provNs, healthAllocs, experiments.Workers(), runtime.GOMAXPROCS(0))

	// The admission-control decision sits on every request's path, so it
	// is gated absolutely against this run's own compile measurement: the
	// shedder may not add more than 1% to an uncontended compile.
	if maxShed := loopNs * 0.01; shedNs > maxShed {
		fmt.Fprintf(os.Stderr,
			"benchguard: shed_admit %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n", shedNs, maxShed)
		os.Exit(1)
	}

	// Sampled verification is likewise gated absolutely: at the server's
	// default sampling rate, the amortized verifier cost may not exceed 5%
	// of a compile. A full verification pass is allowed to be expensive —
	// only its sampled share of the request stream is on the hot path.
	amortized := verifyNs * server.DefaultVerifySample
	if maxVerify := loopNs * 0.05; amortized > maxVerify {
		fmt.Fprintf(os.Stderr,
			"benchguard: sampled verify %.1f ns/op (%.0f ns at rate %.2g) exceeds 5%% of compile_loop (%.1f ns)\n",
			amortized, verifyNs, server.DefaultVerifySample, maxVerify)
		os.Exit(1)
	}

	// The in-memory hit path is what the new disk/peer layers sit under;
	// the acceptance bar is that a memory hit stays under 1% of a compile.
	// (The layers only run on a miss, so this catches accidental work —
	// hashing, allocation, lock widening — added to the hit itself.)
	if maxHit := loopNs * 0.01; hitNs > maxHit {
		fmt.Fprintf(os.Stderr,
			"benchguard: cache_hit %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n", hitNs, maxHit)
		os.Exit(1)
	}

	// Tracing is gated twice, mirroring the verify layer. First the
	// always-on plumbing: an untraced request's context lookups and
	// nil-span calls may not add more than 1% to a compile.
	if maxUntraced := loopNs * 0.01; untracedNs > maxUntraced {
		fmt.Fprintf(os.Stderr,
			"benchguard: untraced tracing path %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n",
			untracedNs, maxUntraced)
		os.Exit(1)
	}
	// Second the sampled slice: at the default 1-in-100 sampling rate, the
	// amortized cost of actually recording a request's span timeline may
	// not exceed 1% of a compile either.
	amortizedTrace := tracedNs * server.DefaultTraceSample
	if maxTraced := loopNs * 0.01; amortizedTrace > maxTraced {
		fmt.Fprintf(os.Stderr,
			"benchguard: sampled tracing %.1f ns/op (%.0f ns at rate %.2g) exceeds 1%% of compile_loop (%.1f ns)\n",
			amortizedTrace, tracedNs, server.DefaultTraceSample, maxTraced)
		os.Exit(1)
	}

	// The disk hit carries a fixed integrity tax (file read + decode +
	// sha256) that is in the same ballpark as compiling the tiny running
	// example, so it is not gated against compile_loop — its payoff grows
	// with loop size and with what recompiling cannot restore (the trace,
	// cross-restart and cross-peer sharing). It gets an absolute sanity
	// budget here and a baseline-relative regression check below.
	const maxDiskNs = 1e6 // 1 ms: a disk hit must stay far below any RPC
	if diskNs > maxDiskNs {
		fmt.Fprintf(os.Stderr,
			"benchguard: disk_hit %.0f ns/op exceeds the %0.f ns sanity budget\n", diskNs, maxDiskNs)
		os.Exit(1)
	}

	// The binary wire format pays its way in decode speed, and the floors
	// are absolute: requests must decode at least 5x faster than JSON over
	// the full workload corpus, artifact transfer envelopes at least 3x.
	// Falling below either means the codec (or the JSON path) changed in a
	// way that voids the format's reason to exist.
	if reqRatio < 5 {
		fmt.Fprintf(os.Stderr,
			"benchguard: request decode ratio %.2fx below the 5x floor\n", reqRatio)
		os.Exit(1)
	}
	if artRatio < 3 {
		fmt.Fprintf(os.Stderr,
			"benchguard: artifact decode ratio %.2fx below the 3x floor\n", artRatio)
		os.Exit(1)
	}

	// The provenance chain records every artifact creation, so its append
	// sits on every uncached compile's path. The durable chained write is
	// asynchronous by design; the synchronous slice measured here may not
	// add more than 1% to a compile.
	if maxProv := loopNs * 0.01; provNs > maxProv {
		fmt.Fprintf(os.Stderr,
			"benchguard: provenance_append %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n", provNs, maxProv)
		os.Exit(1)
	}

	// The health layer is consulted on every hedged fill's request path
	// (ring load + per-replica eligibility). Probing and ejection happen
	// off-path; the on-path consultation must not allocate at all.
	if healthAllocs != 0 {
		fmt.Fprintf(os.Stderr,
			"benchguard: health hot path allocates %.0f times per consultation, want 0\n", healthAllocs)
		os.Exit(1)
	}

	// The prerendered hot path exists to make cache hits allocation-free;
	// the budget below covers only the HTTP skeleton that is per-request
	// by construction (request ID, context tagging, writer wrappers).
	const maxHitAllocs = 24
	if hitAllocs > maxHitAllocs {
		fmt.Fprintf(os.Stderr,
			"benchguard: cache-hit serve allocates %.0f times per request, budget %d\n", hitAllocs, maxHitAllocs)
		os.Exit(1)
	}

	if *write {
		b := Baseline{
			CompileLoopNsOp:      loopNs,
			CompileTimeSec:       ctSec,
			DiskHitNsOp:          diskNs,
			RequestDecodeRatio:   reqRatio,
			ArtifactDecodeRatio:  artRatio,
			CacheHitAllocs:       hitAllocs,
			ProvenanceAppendNsOp: provNs,
			Cores:                runtime.GOMAXPROCS(0),
			Note:                 "written by cmd/benchguard -write; refresh deliberately, not to silence the gate",
		}
		data, _ := json.MarshalIndent(b, "", "  ")
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run with -write to create it)\n", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	fail := false
	check := func(name string, got, want float64) {
		if want <= 0 {
			fmt.Printf("%-24s baseline missing, skipped\n", name)
			return
		}
		regPct := (got/want - 1) * 100
		verdict := "ok"
		if regPct > *threshold {
			verdict = "REGRESSION"
			fail = true
		}
		fmt.Printf("%-24s %12.1f vs baseline %12.1f  (%+6.1f%%)  %s\n", name, got, want, regPct, verdict)
	}
	check("compile_loop_ns_op", loopNs, base.CompileLoopNsOp)
	check("compile_time_seconds", ctSec*1000, base.CompileTimeSec*1000)
	check("disk_hit_ns_op", diskNs, base.DiskHitNsOp)
	check("provenance_append_ns_op", provNs, base.ProvenanceAppendNsOp)
	if fail {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond %.0f%% threshold\n", *threshold)
		os.Exit(1)
	}
}
