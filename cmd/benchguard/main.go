// Command benchguard is the CI benchmark-regression gate. It measures
// the two compile-speed canaries —
//
//	compile_loop_ns_op:   one ltsp.Compile of the paper's running example
//	                      (the single-thread scheduler hot path)
//	compile_time_seconds: wall clock of the CompileTime experiment over
//	                      CPU2006 (the fleet-throughput path)
//
// — and compares them against a checked-in baseline, exiting nonzero
// when either regresses by more than the threshold. Medians of several
// repetitions keep CI-runner noise out of the verdict.
//
// Usage:
//
//	benchguard -baseline BENCH_baseline.json            # gate (CI)
//	benchguard -baseline BENCH_baseline.json -write     # refresh baseline
//	benchguard -threshold 20 -workers 4                 # explicit knobs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ltsp"
	"ltsp/internal/experiments"
	"ltsp/internal/ir"
	"ltsp/internal/server"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
)

// Baseline is the checked-in measurement record.
type Baseline struct {
	CompileLoopNsOp float64 `json:"compile_loop_ns_op"`
	CompileTimeSec  float64 `json:"compile_time_seconds"`
	// DiskHitNsOp is one artifact read from the persistent store —
	// decode + checksum + integrity check — the warm-restart hot path.
	DiskHitNsOp float64 `json:"disk_hit_ns_op,omitempty"`
	// Cores records GOMAXPROCS at measurement time: compile_time_seconds
	// scales with it, so cross-machine comparisons need the context.
	Cores int    `json:"cores"`
	Note  string `json:"note,omitempty"`
}

// exampleLoop is the paper's running example (ld/add/st with unit
// strides), the same shape BenchmarkCompileLoop uses.
func exampleLoop() *ir.Loop {
	l := ir.NewLoop("copyadd")
	v, bs, bd, r, kr := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, kr))
	st := ir.St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x100000)
	l.Init(bd, 0x200000)
	l.Init(kr, 1)
	l.LiveOut = []ir.Reg{bs, bd}
	return l
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// measureCompileLoop returns the median ns per single-thread compile of
// the running example.
func measureCompileLoop(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := ltsp.Compile(exampleLoop(), opts); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureCompileTime returns the median wall-clock seconds of the
// CompileTime experiment.
func measureCompileTime(reps int) float64 {
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := experiments.RunCompileTime(); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: compiletime: %v\n", err)
			os.Exit(1)
		}
		samples = append(samples, time.Since(start).Seconds())
	}
	return median(samples)
}

// measureVerify returns the median ns of one full verification pass —
// structural re-derivation plus the semantic differential oracle — of
// the running example's compilation. Amortized by the default sampling
// rate, this is what trust-but-verify adds to each compile.
func measureVerify(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	c, err := ltsp.Compile(exampleLoop(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
		os.Exit(1)
	}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: verify rejected a clean compilation: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureShedAdmit returns the median ns per admission-control decision
// on a primed shedder — the cost the resilience layer adds to every
// uncontended request before it reaches a worker slot.
func measureShedAdmit(reps, iters int) float64 {
	sh := server.NewShedder(4)
	sh.Prime(5 * time.Millisecond)
	samples := make([]float64, 0, reps)
	var sink time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			wait, ok := sh.Admit(time.Second, 1)
			if !ok {
				fmt.Fprintln(os.Stderr, "benchguard: primed shedder rejected an uncontended request")
				os.Exit(1)
			}
			sink += wait
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	_ = sink
	return median(samples)
}

// measureCacheHit returns the median ns per in-memory artifact-cache
// hit — the fast path every repeated compile request takes, which the
// disk/peer layering underneath must not slow down.
func measureCacheHit(reps, iters int) float64 {
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true}
	c, err := ltsp.Compile(exampleLoop(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: compile: %v\n", err)
		os.Exit(1)
	}
	cache := server.NewArtifactCache(16, &server.Metrics{})
	const key = "bench"
	cache.Add(key, &server.Artifact{Compiled: c, Size: 1})
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, ok := cache.Get(key); !ok {
				fmt.Fprintln(os.Stderr, "benchguard: cache lost its only artifact")
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureUntracedPath returns the median ns of one request's worth of
// tracing plumbing when the request is NOT traced: the per-stage
// context lookups and nil-receiver span calls the server executes
// unconditionally. This is the cost every request pays for the
// telemetry layer existing at all.
func measureUntracedPath(reps, iters int) float64 {
	ctx := context.Background()
	samples := make([]float64, 0, reps)
	var sink int
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			// Six stage sites per request (queue wait, mem lookup, disk
			// read, peer leg, compile, verify), each a context lookup plus
			// no-op span calls on the nil trace.
			for k := 0; k < 6; k++ {
				tr, parent := telemetry.FromContext(ctx)
				s := tr.Start("stage", parent)
				s.SetAttr("outcome", "hit")
				s.End()
				if s != nil {
					sink++
				}
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	_ = sink
	return median(samples)
}

// measureTracedPath returns the median ns of recording one fully traced
// request — trace + root + the per-stage spans with attributes, finish,
// and retention in a registry. Amortized by the default sampling rate,
// this is what background span sampling adds to each request.
func measureTracedPath(reps, iters int) float64 {
	reg := telemetry.NewRegistry(0, 0)
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			tr := telemetry.New("")
			root := tr.StartRemote("server POST /v2/compile", "")
			root.SetAttr("request_id", "bench-1")
			for _, name := range [...]string{"queue_wait", "mem_lookup", "compile", "verify"} {
				s := tr.Start(name, root)
				s.SetAttr("outcome", "ok")
				s.End()
			}
			root.End()
			tr.Finish("POST /v2/compile", 200)
			reg.Record(tr)
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

// measureDiskHit returns the median ns per persistent-store read of the
// running example's artifact — file read, decode, checksum — i.e. the
// per-artifact cost of a warm restart.
func measureDiskHit(reps, iters int) float64 {
	dir, err := os.MkdirTemp("", "benchguard-store")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()

	loopData, err := ir.EncodeLoop(exampleLoop())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	req := wire.CompileRequest{Version: wire.Version, Loop: loopData,
		Options: wire.Options{Mode: "hlo", Prefetch: true, LatencyTolerant: true}}
	canon, err := req.Canonical()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	hash := wire.HashOf(canon)
	if err := st.Put(&store.Entry{
		Hash:     hash,
		Request:  canon,
		Response: json.RawMessage(`{"hash":"` + hash + `","outcome":"pipelined"}`),
		Trace:    json.RawMessage(`[]`),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	samples := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := st.Get(hash); err != nil {
				fmt.Fprintf(os.Stderr, "benchguard: disk hit: %v\n", err)
				os.Exit(1)
			}
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(iters))
	}
	return median(samples)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write)")
		write        = flag.Bool("write", false, "write the measured values as the new baseline instead of gating")
		threshold    = flag.Float64("threshold", 20, "max tolerated regression in percent")
		workers      = flag.Int("workers", 0, "experiment worker-pool width (0 = GOMAXPROCS)")
		loopReps     = flag.Int("loop-reps", 5, "repetitions of the compile-loop measurement")
		loopIters    = flag.Int("loop-iters", 1000, "compiles per compile-loop repetition")
		ctReps       = flag.Int("ct-reps", 3, "repetitions of the compile-time experiment")
	)
	flag.Parse()
	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}

	loopNs := measureCompileLoop(*loopReps, *loopIters)
	ctSec := measureCompileTime(*ctReps)
	shedNs := measureShedAdmit(*loopReps, 100000)
	verifyNs := measureVerify(*loopReps, 200)
	hitNs := measureCacheHit(*loopReps, 100000)
	diskNs := measureDiskHit(*loopReps, 500)
	untracedNs := measureUntracedPath(*loopReps, 100000)
	tracedNs := measureTracedPath(*loopReps, 10000)
	fmt.Printf("measured: compile_loop %.0f ns/op, compile_time %.3f s, shed_admit %.1f ns/op, verify %.0f ns/op, cache_hit %.1f ns/op, disk_hit %.0f ns/op, untraced %.1f ns/op, traced %.0f ns/op (workers %d, cores %d)\n",
		loopNs, ctSec, shedNs, verifyNs, hitNs, diskNs, untracedNs, tracedNs, experiments.Workers(), runtime.GOMAXPROCS(0))

	// The admission-control decision sits on every request's path, so it
	// is gated absolutely against this run's own compile measurement: the
	// shedder may not add more than 1% to an uncontended compile.
	if maxShed := loopNs * 0.01; shedNs > maxShed {
		fmt.Fprintf(os.Stderr,
			"benchguard: shed_admit %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n", shedNs, maxShed)
		os.Exit(1)
	}

	// Sampled verification is likewise gated absolutely: at the server's
	// default sampling rate, the amortized verifier cost may not exceed 5%
	// of a compile. A full verification pass is allowed to be expensive —
	// only its sampled share of the request stream is on the hot path.
	amortized := verifyNs * server.DefaultVerifySample
	if maxVerify := loopNs * 0.05; amortized > maxVerify {
		fmt.Fprintf(os.Stderr,
			"benchguard: sampled verify %.1f ns/op (%.0f ns at rate %.2g) exceeds 5%% of compile_loop (%.1f ns)\n",
			amortized, verifyNs, server.DefaultVerifySample, maxVerify)
		os.Exit(1)
	}

	// The in-memory hit path is what the new disk/peer layers sit under;
	// the acceptance bar is that a memory hit stays under 1% of a compile.
	// (The layers only run on a miss, so this catches accidental work —
	// hashing, allocation, lock widening — added to the hit itself.)
	if maxHit := loopNs * 0.01; hitNs > maxHit {
		fmt.Fprintf(os.Stderr,
			"benchguard: cache_hit %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n", hitNs, maxHit)
		os.Exit(1)
	}

	// Tracing is gated twice, mirroring the verify layer. First the
	// always-on plumbing: an untraced request's context lookups and
	// nil-span calls may not add more than 1% to a compile.
	if maxUntraced := loopNs * 0.01; untracedNs > maxUntraced {
		fmt.Fprintf(os.Stderr,
			"benchguard: untraced tracing path %.1f ns/op exceeds 1%% of compile_loop (%.1f ns)\n",
			untracedNs, maxUntraced)
		os.Exit(1)
	}
	// Second the sampled slice: at the default 1-in-100 sampling rate, the
	// amortized cost of actually recording a request's span timeline may
	// not exceed 1% of a compile either.
	amortizedTrace := tracedNs * server.DefaultTraceSample
	if maxTraced := loopNs * 0.01; amortizedTrace > maxTraced {
		fmt.Fprintf(os.Stderr,
			"benchguard: sampled tracing %.1f ns/op (%.0f ns at rate %.2g) exceeds 1%% of compile_loop (%.1f ns)\n",
			amortizedTrace, tracedNs, server.DefaultTraceSample, maxTraced)
		os.Exit(1)
	}

	// The disk hit carries a fixed integrity tax (file read + decode +
	// sha256) that is in the same ballpark as compiling the tiny running
	// example, so it is not gated against compile_loop — its payoff grows
	// with loop size and with what recompiling cannot restore (the trace,
	// cross-restart and cross-peer sharing). It gets an absolute sanity
	// budget here and a baseline-relative regression check below.
	const maxDiskNs = 1e6 // 1 ms: a disk hit must stay far below any RPC
	if diskNs > maxDiskNs {
		fmt.Fprintf(os.Stderr,
			"benchguard: disk_hit %.0f ns/op exceeds the %0.f ns sanity budget\n", diskNs, maxDiskNs)
		os.Exit(1)
	}

	if *write {
		b := Baseline{
			CompileLoopNsOp: loopNs,
			CompileTimeSec:  ctSec,
			DiskHitNsOp:     diskNs,
			Cores:           runtime.GOMAXPROCS(0),
			Note:            "written by cmd/benchguard -write; refresh deliberately, not to silence the gate",
		}
		data, _ := json.MarshalIndent(b, "", "  ")
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run with -write to create it)\n", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	fail := false
	check := func(name string, got, want float64) {
		if want <= 0 {
			fmt.Printf("%-22s baseline missing, skipped\n", name)
			return
		}
		regPct := (got/want - 1) * 100
		verdict := "ok"
		if regPct > *threshold {
			verdict = "REGRESSION"
			fail = true
		}
		fmt.Printf("%-22s %12.1f vs baseline %12.1f  (%+6.1f%%)  %s\n", name, got, want, regPct, verdict)
	}
	check("compile_loop_ns_op", loopNs, base.CompileLoopNsOp)
	check("compile_time_seconds", ctSec*1000, base.CompileTimeSec*1000)
	check("disk_hit_ns_op", diskNs, base.DiskHitNsOp)
	if fail {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond %.0f%% threshold\n", *threshold)
		os.Exit(1)
	}
}
