package ltsp_test

// Runnable documentation for the public surface of package ltsp: the
// compile entry points, cooperative cancellation, forced-sequential
// compilation, and functional execution of a compiled kernel. Each
// Example pins behavior the README promises, so `go test` keeps the
// documentation honest.

import (
	"context"
	"errors"
	"fmt"
	"log"

	"ltsp"
)

// copyAddLoop builds the paper's Fig. 1 running example:
//
//	L1: ld4  r4 = [r5],4
//	    add  r7 = r4,r9
//	    st4  [r6] = r7,4
//	    br.cloop L1
func copyAddLoop() *ltsp.Loop {
	l := ltsp.NewLoop("L1")
	v, src, dst, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ltsp.Ld(v, src, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ltsp.StrideUnit, 4
	l.Append(ld)
	l.Append(ltsp.Add(r, v, k))
	st := ltsp.St(dst, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ltsp.StrideUnit, 4
	l.Append(st)
	l.Init(src, 0x100000)
	l.Init(dst, 0x200000)
	l.Init(k, 1)
	l.LiveOut = []ltsp.Reg{src, dst}
	return l
}

// ExampleCompile pipelines the running example with latency tolerance
// and reports the kernel structure.
func ExampleCompile() {
	c, err := ltsp.Compile(copyAddLoop(), ltsp.Options{
		Mode:            ltsp.ModeHLO,
		Prefetch:        true,
		LatencyTolerant: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined:", c.Pipelined)
	fmt.Println("II at resource bound:", c.II == c.ResII)
	fmt.Println("outcome:", c.Outcome())
	// Output:
	// pipelined: true
	// II at resource bound: true
	// outcome: pipelined
}

// ExampleCompileContext shows cooperative cancellation: a context that
// is already done fails the compilation with the context's error
// instead of silently degrading to a sequential schedule.
func ExampleCompileContext() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ltsp.CompileContext(ctx, copyAddLoop(), ltsp.Options{LatencyTolerant: true})
	fmt.Println("canceled:", errors.Is(err, context.Canceled))
	// Output:
	// canceled: true
}

// ExampleCompile_sequential forces the pipelining decision off; the
// loop still compiles, to an acyclic list schedule.
func ExampleCompile_sequential() {
	off := false
	c, err := ltsp.Compile(copyAddLoop(), ltsp.Options{Pipeline: &off})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined:", c.Pipelined)
	fmt.Println("outcome:", c.Outcome())
	// Output:
	// pipelined: false
	// outcome: sequential
}

// ExampleRun executes the compiled kernel functionally (no timing) and
// checks the loop really computed b[i] = a[i] + 1.
func ExampleRun() {
	c, err := ltsp.Compile(copyAddLoop(), ltsp.Options{LatencyTolerant: true})
	if err != nil {
		log.Fatal(err)
	}
	mem := ltsp.NewMemory()
	for i := int64(0); i < 8; i++ {
		mem.Store(0x100000+4*i, 4, 10*i)
	}
	if _, err := ltsp.Run(c, 8, mem); err != nil {
		log.Fatal(err)
	}
	fmt.Println("b[0]:", mem.Load(0x200000, 4))
	fmt.Println("b[7]:", mem.Load(0x200000+4*7, 4))
	// Output:
	// b[0]: 1
	// b[7]: 71
}

// ExampleCompile_backend selects the exact branch-and-bound scheduler.
// For small loops it proves the achieved II optimal; the heuristic (the
// default backend, also spelled "") would find the same II here, which
// is exactly what the oracle backend measures fleet-wide.
func ExampleCompile_backend() {
	c, err := ltsp.Compile(copyAddLoop(), ltsp.Options{
		LatencyTolerant: true,
		Backend:         ltsp.BackendExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backend:", c.Backend)
	fmt.Println("proven optimal II:", c.ProvenII)
	fmt.Println("outcome:", c.Outcome())
	// Output:
	// backend: exact
	// proven optimal II: true
	// outcome: pipelined
}

// ExampleCompile_unknownBackend: backend names are validated up front,
// so a typo is an error rather than a silent fall-through to the
// default scheduler.
func ExampleCompile_unknownBackend() {
	_, err := ltsp.Compile(copyAddLoop(), ltsp.Options{Backend: "simplex"})
	fmt.Println("err:", err != nil)
	fmt.Println("known backends:", ltsp.SchedulerBackends())
	// Output:
	// err: true
	// known backends: [exact heuristic oracle]
}
