// FP loop: daxpy through the public FP surface of package ltsp.
//
// Builds z[i] = a*x[i] + y[i] with the exported FP builders (LdF, FMA,
// FAdd, FMul, StF), pipelines it latency-tolerantly, verifies the
// result functionally, and times it against a cold hierarchy. FP loads
// bypass L1 on Itanium 2, so even "cache-resident" FP code carries a
// 7+-cycle base latency — exactly the gap latency-tolerant pipelining
// hides by default with FP-L2 hints.
//
// Run with: go run ./examples/fploop
package main

import (
	"fmt"
	"log"

	"ltsp"
)

const (
	xBase = 0x0100_0000
	yBase = 0x0200_0000
	zBase = 0x0300_0000
	elems = 2048
)

func buildDaxpy() *ltsp.Loop {
	l := ltsp.NewLoop("daxpy")
	x, y, t, a := l.NewFR(), l.NewFR(), l.NewFR(), l.NewFR()
	bx, by, bz := l.NewGR(), l.NewGR(), l.NewGR()
	ldx := ltsp.LdF(x, bx, 8)
	ldx.Mem.Stride, ldx.Mem.StrideBytes = ltsp.StrideUnit, 8
	l.Append(ldx)
	ldy := ltsp.LdF(y, by, 8)
	ldy.Mem.Stride, ldy.Mem.StrideBytes = ltsp.StrideUnit, 8
	l.Append(ldy)
	l.Append(ltsp.FMA(t, x, a, y))
	st := ltsp.StF(bz, t, 8)
	st.Mem.Stride, st.Mem.StrideBytes = ltsp.StrideUnit, 8
	l.Append(st)
	l.Init(bx, xBase)
	l.Init(by, yBase)
	l.Init(bz, zBase)
	l.InitF(a, 1.5)
	l.LiveOut = []ltsp.Reg{bx, by, bz}
	return l
}

func main() {
	c, err := ltsp.Compile(buildDaxpy(), ltsp.Options{
		Mode:            ltsp.ModeHLO,
		Prefetch:        true,
		LatencyTolerant: true,
		TripEstimate:    elems,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daxpy: II=%d stages=%d outcome=%s\n", c.II, c.Stages, c.Outcome())
	for _, lr := range c.Loads {
		class := "non-critical"
		if lr.Critical {
			class = "critical"
		}
		fmt.Printf("  load body[%d]: %s, base latency %d, scheduled %d\n",
			lr.ID, class, lr.BaseLat, lr.SchedLat)
	}

	mem := ltsp.NewMemory()
	for i := int64(0); i < elems; i++ {
		mem.StoreF(xBase+8*i, float64(i))
		mem.StoreF(yBase+8*i, 100)
	}
	if _, err := ltsp.Run(c, elems, mem); err != nil {
		log.Fatal(err)
	}
	for _, i := range []int64{0, 1, elems - 1} {
		want := 1.5*float64(i) + 100
		got := mem.LoadF(zBase + 8*i)
		if got != want {
			log.Fatalf("z[%d] = %v, want %v", i, got, want)
		}
	}
	fmt.Printf("functional check ok: z[i] = 1.5*x[i] + y[i] for %d elements\n", int64(elems))

	res, err := ltsp.Simulate(c, elems, mem, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %.2f cycles/iter\n", float64(res.Cycles)/float64(elems))
}
