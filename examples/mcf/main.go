// The Sec. 4.4 case study: 429.mcf's refresh_potential() loop.
//
//	while (node) {
//	    if (node->orientation == UP)
//	        node->potential = node->basic_arc->cost + node->pred->potential;
//	    ...
//	    node = node->child;
//	}
//
// The indirect loads (node->basic_arc->cost, node->pred->potential) are
// delinquent — they depend on the pointer chase and cannot be prefetched —
// so HLO heuristic (1) marks them and the pipeliner schedules them with
// the expected L2 latency, clustering instances from successive
// iterations. Despite an average trip count of just 2.3 the loop speeds
// up substantially (the paper measured +40%).
//
// Run with: go run ./examples/mcf
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ltsp"
)

const (
	nodeArena = 0x0200_0000
	arcArena  = 0x0400_0000
	parArena  = 0x0600_0000
	nodes     = 1 << 15
	nodeSize  = 32
	offArc    = 8
	offPred   = 16
	offPot    = 24
)

// buildLoop expresses the if-converted chase. The loop-carried node
// pointer uses the mov/load idiom (rotating registers carry it between
// stages); all four dereference loads are pointer-chase class.
func buildLoop() *ltsp.Loop {
	l := ltsp.NewLoop("refresh_potential")
	pnext, pcur := l.NewGR(), l.NewGR()
	t1, ba, cost := l.NewGR(), l.NewGR(), l.NewGR()
	t2, pd, t3, pot := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	v, t4 := l.NewGR(), l.NewGR()

	l.Append(ltsp.Mov(pcur, pnext))
	chase := ltsp.Ld(pnext, pcur, 8, 0)
	chase.Mem.Stride = ltsp.StridePointerChase
	chase.Comment = "node = node->child"
	l.Append(chase)
	l.Append(ltsp.AddI(t1, pcur, offArc))
	ldArc := ltsp.Ld(ba, t1, 8, 0)
	ldArc.Mem.Stride = ltsp.StridePointerChase
	ldArc.Comment = "node->basic_arc"
	l.Append(ldArc)
	ldCost := ltsp.Ld(cost, ba, 8, 0)
	ldCost.Mem.Stride = ltsp.StridePointerChase
	ldCost.Comment = "basic_arc->cost"
	l.Append(ldCost)
	l.Append(ltsp.AddI(t2, pcur, offPred))
	ldPred := ltsp.Ld(pd, t2, 8, 0)
	ldPred.Mem.Stride = ltsp.StridePointerChase
	ldPred.Comment = "node->pred"
	l.Append(ldPred)
	l.Append(ltsp.AddI(t3, pd, offPot))
	ldPot := ltsp.Ld(pot, t3, 8, 0)
	ldPot.Mem.Stride = ltsp.StridePointerChase
	ldPot.Comment = "pred->potential"
	l.Append(ldPot)
	l.Append(ltsp.Add(v, cost, pot))
	l.Append(ltsp.AddI(t4, pcur, offPot))
	st := ltsp.St(t4, v, 8, 0)
	st.Comment = "node->potential ="
	l.Append(st)
	l.Init(pnext, nodeArena)
	return l
}

// seed lays out the network: nodes in traversal order (mcf allocates them
// sequentially), arcs and parents scattered so the dereferences miss.
func seed(mem *ltsp.Memory) {
	rng := rand.New(rand.NewSource(7))
	for i := int64(0); i < nodes; i++ {
		addr := int64(nodeArena) + i*nodeSize
		mem.Store(addr+0, 8, int64(nodeArena)+((i+1)%nodes)*nodeSize)
		mem.Store(addr+offArc, 8, int64(arcArena)+rng.Int63n(nodes)*64)
		mem.Store(addr+offPred, 8, int64(parArena)+rng.Int63n(nodes)*64)
	}
	for i := int64(0); i < nodes; i++ {
		mem.Store(int64(arcArena)+i*64, 8, 100+i%37)
		mem.Store(int64(parArena)+i*64+offPot, 8, i%53)
	}
}

func measure(name string, mode ltsp.HintMode, tolerant bool) float64 {
	l := buildLoop()
	c, err := ltsp.Compile(l, ltsp.Options{
		Mode:            mode,
		Prefetch:        true,
		LatencyTolerant: tolerant,
		BoostDelinquent: tolerant,
		TripEstimate:    2.3,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("── %s ──\n", name)
	fmt.Printf("II = %d, stages = %d\n", c.II, c.Stages)
	for _, lr := range c.Loads {
		in := l.Body[lr.ID]
		label := in.Comment
		switch {
		case lr.Critical:
			fmt.Printf("  %-22s critical (pointer-chase recurrence), base latency %d\n", label, lr.BaseLat)
		case lr.SchedLat > lr.BaseLat:
			fmt.Printf("  %-22s boosted to %d cycles, clustering k = %d\n", label, lr.SchedLat, lr.ClusterK)
		default:
			fmt.Printf("  %-22s base latency %d\n", label, lr.BaseLat)
		}
	}

	// Simulate executions with the paper's trip-count mix (avg 2.3), cold
	// caches (the rest of mcf evicts the network between invocations).
	runner := ltsp.NewRunner(nil)
	mem := ltsp.NewMemory()
	seed(mem)
	var total int64
	execs := 0
	for _, trip := range []int64{2, 2, 2, 3, 2, 3, 2, 2, 3, 2} {
		runner.DropCaches()
		r, err := runner.Run(c.Program, trip, mem)
		if err != nil {
			log.Fatal(err)
		}
		total += r.Cycles
		execs++
	}
	avg := float64(total) / float64(execs)
	fmt.Printf("  %.0f cycles per loop execution (avg over %d executions, avg trip 2.3)\n\n", avg, execs)
	return avg
}

func main() {
	fmt.Println("429.mcf refresh_potential() — delinquent-load clustering (paper Sec. 4.4)")
	fmt.Println()
	base := measure("baseline compiler", ltsp.ModeNone, false)
	hlo := measure("HLO hints + latency-tolerant pipelining", ltsp.ModeHLO, true)
	fmt.Printf("loop speedup: %+.1f%% (paper: +40%%)\n", 100*(base/hlo-1))
}
