// Data speculation as a Recurrence-II reducer (paper Sec. 3.3:
// "optimizations such as predicate promotion, riffling, and data
// speculation are done to reduce the recurrence cycle lengths").
//
// A loop that stores through one pointer and loads through another, where
// the compiler cannot prove the two never overlap, carries a conservative
// store->load dependence. On a recurrence cycle that dependence dictates
// the II. Breaking it with an advanced load (ld.a) plus a check (chk.a)
// restores the short recurrence — and, once the load is off the critical
// cycle, the latency-tolerant pipeliner can boost it too.
//
// Run with: go run ./examples/speculation
package main

import (
	"fmt"
	"log"

	"ltsp"
)

const (
	loadBase  = 0x0100_0000
	storeBase = 0x0300_0000
	elems     = 4096
)

// buildLoop: out[i] = in[i] + 3 where the compiler must assume out may
// alias in (e.g. both reached through unanalyzable pointers).
func buildLoop(hint ltsp.Hint) *ltsp.Loop {
	l := ltsp.NewLoop("maybe_alias")
	v, t := l.NewGR(), l.NewGR()
	bl, bs := l.NewGR(), l.NewGR()
	ld := ltsp.Ld(v, bl, 8, 128) // one fresh line per iteration
	ld.Mem.Stride, ld.Mem.StrideBytes = ltsp.StrideConst, 128
	ld.Mem.Hint = hint
	l.Append(ld)
	l.Append(ltsp.AddI(t, v, 3))
	st := ltsp.St(bs, t, 8, 8)
	st.Mem.Stride, st.Mem.StrideBytes = ltsp.StrideUnit, 8
	l.Append(st)
	// The conservative cross-iteration ordering the front end must assume:
	// next iteration's load may read what this iteration's store wrote.
	l.MemDeps = []ltsp.MemDep{{From: 2, To: 0, Distance: 1, Latency: 2, MayAlias: true}}
	l.Init(bl, loadBase)
	l.Init(bs, storeBase)
	l.LiveOut = []ltsp.Reg{bl, bs}
	return l
}

func run(name string, speculate bool) int64 {
	l := buildLoop(ltsp.HintL3)
	broken := 0
	if speculate {
		broken = ltsp.DataSpeculate(l)
	}
	c, err := ltsp.Compile(l, ltsp.Options{Prefetch: false, LatencyTolerant: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("── %s ──\n", name)
	fmt.Printf("dependences speculated: %d\n", broken)
	fmt.Printf("Recurrence II = %d, achieved II = %d, stages = %d\n", c.RecII, c.II, c.Stages)
	for _, lr := range c.Loads {
		fmt.Printf("load: scheduled latency %d (d = %d, k = %d)\n", lr.SchedLat, lr.ExtraD, lr.ClusterK)
	}

	mem := ltsp.NewMemory()
	for i := int64(0); i < elems; i++ {
		mem.Store(loadBase+128*i, 8, 7*i)
	}
	res, err := ltsp.Simulate(c, elems-8, mem, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d iterations: %d cycles (%d stall cycles)\n\n",
		elems-8, res.Cycles, res.Acct.ExeBubble)
	if got := res.State.Mem.Load(storeBase, 8); got != 3 {
		log.Fatalf("wrong result: %d", got)
	}
	return res.Cycles
}

func main() {
	fmt.Println("Data speculation: breaking a may-alias recurrence (paper Sec. 3.3)")
	fmt.Println()
	conservative := run("conservative (store->load dependence respected)", false)
	speculated := run("speculated (ld.a + chk.a, dependence broken)", true)
	fmt.Printf("speedup from data speculation + boosting: %+.1f%%\n",
		100*(float64(conservative)/float64(speculated)-1))
}
