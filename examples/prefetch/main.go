// Prefetcher interplay: indirect references a[b[i]] (HLO heuristic 2b).
//
// The index stream b is unit-stride and prefetched at the full distance
// Lat/IIest; the indirect stream a can only be prefetched a few iterations
// ahead (each outstanding indirect prefetch may touch a different page, so
// the distance is capped to protect the TLB). Because that covers only
// part of the miss latency, HLO marks the indirect load for
// longer-latency scheduling — prefetching and latency tolerance working
// together rather than as alternatives, the paper's main contribution.
//
// Run with: go run ./examples/prefetch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ltsp"
)

const (
	idxArena   = 0x0100_0000
	tableArena = 0x0300_0000
	idxElems   = 1 << 13
	tableElems = 1 << 19 // 4 MB table: gathers miss to L3/memory
)

func buildLoop() *ltsp.Loop {
	l := ltsp.NewLoop("gather")
	bi, ta, abase := l.NewGR(), l.NewGR(), l.NewGR()
	idx, v, acc := l.NewGR(), l.NewGR(), l.NewGR()
	ldi := ltsp.Ld(idx, bi, 4, 4)
	ldi.Mem.Stride, ldi.Mem.StrideBytes = ltsp.StrideUnit, 4
	ldi.Comment = "idx = b[i]"
	l.Append(ldi)
	l.Append(ltsp.Shladd(ta, idx, 3, abase))
	ldv := ltsp.Ld(v, ta, 8, 0)
	ldv.Mem.Stride = ltsp.StrideIndirect
	ldv.Mem.IndexInit = idxArena
	ldv.Mem.IndexStride = 4
	ldv.Mem.IndexSize = 4
	ldv.Mem.ScaleShift = 3
	ldv.Mem.ArrayBase = abase
	ldv.Comment = "v = a[idx]"
	l.Append(ldv)
	l.Append(ltsp.Add(acc, acc, v))
	l.Init(bi, idxArena)
	l.Init(abase, tableArena)
	l.Init(acc, 0)
	l.LiveOut = []ltsp.Reg{acc}
	return l
}

func seed(mem *ltsp.Memory) {
	rng := rand.New(rand.NewSource(42))
	for i := int64(0); i < idxElems; i++ {
		mem.Store(idxArena+4*i, 4, rng.Int63n(tableElems))
	}
	for i := int64(0); i < tableElems; i++ {
		mem.Store(tableArena+8*i, 8, i%1009)
	}
}

func run(name string, mode ltsp.HintMode, tolerant bool) int64 {
	l := buildLoop()
	c, err := ltsp.Compile(l, ltsp.Options{
		Mode: mode, Prefetch: true, LatencyTolerant: tolerant, TripEstimate: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("── %s ──\n", name)
	fmt.Printf("HLO decisions (IIest = %d):\n", c.HLO.IIEst)
	for _, r := range c.HLO.Refs {
		in := l.Body[r.ID]
		fmt.Printf("  body[%d] %-14s heuristic=%-16s hint=%-4s", r.ID, in.Comment, r.Heuristic, r.Hint)
		if r.Distance > 0 {
			fmt.Printf(" prefetch-distance=%d", r.Distance)
		}
		fmt.Println()
	}
	fmt.Printf("kernel: II=%d stages=%d; ", c.II, c.Stages)
	for _, lr := range c.Loads {
		if lr.SchedLat > lr.BaseLat {
			fmt.Printf("gather scheduled at %d cycles (k=%d); ", lr.SchedLat, lr.ClusterK)
		}
	}
	fmt.Println()

	runner := ltsp.NewRunner(nil)
	mem := ltsp.NewMemory()
	seed(mem)
	var cycles int64
	for e := 0; e < 3; e++ {
		runner.DropCaches() // gathers over a 4 MB table stay cold
		r, err := runner.Run(c.Program, 400, mem)
		if err != nil {
			log.Fatal(err)
		}
		cycles += r.Cycles
	}
	fmt.Printf("3 executions x 400 iterations: %d cycles\n\n", cycles)
	return cycles
}

func main() {
	fmt.Println("Indirect references: reduced prefetch distance + latency hints (heuristic 2b)")
	fmt.Println()
	base := run("baseline (prefetching only)", ltsp.ModeNone, false)
	hlo := run("HLO hints + latency tolerance", ltsp.ModeHLO, true)
	fmt.Printf("speedup from marking the partially-covered gather: %+.1f%%\n",
		100*(float64(base)/float64(hlo)-1))
}
