// While-loop pipelining: the br.wtop kernel.
//
// The paper's Sec. 4.4 loop is really `while (node) { ... }` — a
// data-terminated loop with no trip count. Itanium pipelines such loops
// kernel-only with br.wtop: the loop computes its own validity chain in a
// rotating predicate (pv' = pv && node->child != NULL, a predicated
// cmp.unc), every instruction is qualified by the chain, and the branch
// tests the validity of the oldest in-flight iteration (EC counts the
// fill). Latency-tolerant scheduling composes with this unchanged: the
// chase stays critical on the recurrence while the delinquent payload
// loads are boosted and clustered.
//
// Run with: go run ./examples/whileloop
package main

import (
	"fmt"
	"log"

	"ltsp"
)

const (
	listArena = 0x0200_0000
	offVal    = 8
)

// buildLoop sums a NULL-terminated linked list whose payloads live behind
// a second pointer (like mcf's node->basic_arc->cost):
//
//	while (p) { sum += *p->valptr; p = p->next; }
func buildLoop(hint ltsp.Hint) *ltsp.Loop {
	l := ltsp.NewLoop("listsum")
	pv := l.NewPR()
	pnext, pcur, tv, vp, v, sum := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()

	q := func(in *ltsp.Instr) *ltsp.Instr { return ltsp.Predicated(pv, in) }
	l.Append(q(ltsp.Mov(pcur, pnext)))
	chase := ltsp.Ld(pnext, pcur, 8, 0)
	chase.Mem.Stride = ltsp.StridePointerChase
	chase.Comment = "p = p->next"
	l.Append(q(chase))
	l.Append(q(ltsp.AddI(tv, pcur, offVal)))
	ldp := ltsp.Ld(vp, tv, 8, 0)
	ldp.Mem.Stride = ltsp.StridePointerChase
	ldp.Mem.Hint = hint
	ldp.Comment = "p->valptr"
	l.Append(q(ldp))
	ldv := ltsp.Ld(v, vp, 8, 0)
	ldv.Mem.Stride = ltsp.StridePointerChase
	ldv.Mem.Hint = hint
	ldv.Comment = "*valptr"
	l.Append(q(ldv))
	l.Append(q(ltsp.Add(sum, sum, v)))
	l.Append(q(ltsp.CmpEqI(l.NewPR(), pv, pnext, 0))) // pv' = pv && p != NULL

	l.While = &ltsp.WhileInfo{Cond: pv}
	l.Init(pv, 1)
	l.Init(pnext, listArena)
	l.Init(sum, 0)
	l.LiveOut = []ltsp.Reg{sum}
	return l
}

// seed scatters a NULL-terminated list of n elements; each node's value
// pointer targets a separate region (every dereference its own line).
func seed(mem *ltsp.Memory, n int64) {
	const valArena = 0x0400_0000
	for i := int64(0); i < n; i++ {
		addr := int64(listArena) + i*4096 // one node per page: every access misses
		next := int64(listArena) + (i+1)*4096
		if i == n-1 {
			next = 0
		}
		mem.Store(addr, 8, next)
		mem.Store(addr+offVal, 8, valArena+i*4096)
		mem.Store(valArena+i*4096, 8, i+1)
	}
}

func run(name string, hint ltsp.Hint, tolerant bool) int64 {
	const n = 64
	l := buildLoop(hint)
	c, err := ltsp.Compile(l, ltsp.Options{LatencyTolerant: tolerant, BoostDelinquent: tolerant})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("── %s ──\n", name)
	fmt.Printf("II = %d, stages = %d, br.wtop on %s\n", c.II, c.Stages, c.Program.WhileQP)
	for _, lr := range c.Loads {
		in := l.Body[lr.ID]
		switch {
		case lr.Critical:
			fmt.Printf("  %-12s critical (chase/validity recurrence)\n", in.Comment)
		case lr.SchedLat > lr.BaseLat:
			fmt.Printf("  %-12s boosted to %d cycles (k = %d)\n", in.Comment, lr.SchedLat, lr.ClusterK)
		default:
			fmt.Printf("  %-12s base latency\n", in.Comment)
		}
	}
	mem := ltsp.NewMemory()
	seed(mem, n)
	res, err := ltsp.Simulate(c, 1000 /* cap; the data terminates the loop */, mem, nil)
	if err != nil {
		log.Fatal(err)
	}
	want := int64(n * (n + 1) / 2)
	if got := res.State.ReadReg(c.Program.LiveOut[0]); got != want {
		log.Fatalf("sum = %d, want %d", got, want)
	}
	fmt.Printf("  list of %d nodes summed correctly in %d cycles\n\n", n, res.Cycles)
	return res.Cycles
}

func main() {
	fmt.Println("Data-terminated (while) loop pipelining with br.wtop")
	fmt.Println()
	base := run("baseline", ltsp.HintNone, false)
	boosted := run("payload load hinted L2, latency-tolerant", ltsp.HintL2, true)
	fmt.Printf("speedup: %+.1f%% — clustering works even when the trip count\n", 100*(float64(base)/float64(boosted)-1))
	fmt.Println("is unknowable at compile time (it is data, not a register).")
}
