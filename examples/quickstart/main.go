// Quickstart: the paper's running example (Figs. 1-6).
//
// Builds the three-instruction copy-add loop of Fig. 1, software-pipelines
// it with and without latency tolerance, prints both kernels, and
// simulates them against a cold memory hierarchy to show the stall
// reduction that latency coverage and load clustering buy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ltsp"
)

const (
	srcBase = 0x0100_0000
	dstBase = 0x0200_0000
	elems   = 4096
)

// buildLoop constructs Fig. 1:
//
//	L1: ld4  r4 = [r5],4
//	    add  r7 = r4,r9
//	    st4  [r6] = r7,4
//	    br.cloop L1
//
// The load walks a fresh cache line every iteration (stride 128) so that
// every access misses a cold hierarchy — the scenario of Sec. 2.1.
func buildLoop(hint ltsp.Hint) *ltsp.Loop {
	l := ltsp.NewLoop("L1")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ltsp.Ld(r4, r5, 4, 128)
	ld.Mem.Stride, ld.Mem.StrideBytes = ltsp.StrideConst, 128
	ld.Mem.Hint = hint
	l.Append(ld)
	l.Append(ltsp.Add(r7, r4, r9))
	st := ltsp.St(r6, r7, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ltsp.StrideUnit, 4
	l.Append(st)
	l.Init(r5, srcBase)
	l.Init(r6, dstBase)
	l.Init(r9, 1000)
	l.LiveOut = []ltsp.Reg{r5, r6}
	return l
}

func seed(mem *ltsp.Memory) {
	for i := int64(0); i < elems; i++ {
		mem.Store(srcBase+128*i, 4, 10*i+3)
	}
}

func compileAndRun(name string, hint ltsp.Hint, tolerant bool) int64 {
	l := buildLoop(hint)
	c, err := ltsp.Compile(l, ltsp.Options{
		Mode:            ltsp.ModeNone, // hints set directly on the load above
		Prefetch:        false,         // isolate the scheduling effect (Sec. 2.1)
		LatencyTolerant: tolerant,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}

	fmt.Printf("── %s ──\n", name)
	fmt.Printf("II = %d, stages = %d (Resource II %d, Recurrence II %d)\n",
		c.II, c.Stages, c.ResII, c.RecII)
	for _, lr := range c.Loads {
		fmt.Printf("load: scheduled latency %d (base %d) -> additional d = %d, clustering k = d/II+1 = %d\n",
			lr.SchedLat, lr.BaseLat, lr.ExtraD, lr.ClusterK)
	}
	fmt.Println(c.Program.Listing())
	if c.Stages <= 6 {
		fmt.Println(c.Diagram(5)) // the conceptual view of Figs. 2/4
	}

	mem := ltsp.NewMemory()
	seed(mem)
	res, err := ltsp.Simulate(c, elems-8, mem, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d iterations: %d cycles, %d stall cycles (BE_EXE_BUBBLE)\n",
		elems-8, res.Cycles, res.Acct.ExeBubble)
	// Verify the result while we are here.
	if got := res.State.Mem.Load(dstBase, 4); got != 10*0+3+1000 {
		log.Fatalf("wrong result: dst[0] = %d", got)
	}
	fmt.Println()
	return res.Acct.ExeBubble
}

func main() {
	fmt.Println("Latency-tolerant software pipelining — the paper's running example")
	fmt.Println()

	base := compileAndRun("baseline (loads at minimum latency)", ltsp.HintNone, false)
	tol := compileAndRun("latency-tolerant (load hinted L3, typical latency 21)", ltsp.HintL3, true)

	reduction := 100 * (1 - float64(tol)/float64(base))
	fmt.Printf("stall reduction from latency tolerance: %.1f%%\n", reduction)
	fmt.Println()
	fmt.Println("Equ. 2 of the paper predicts 100*(1-(1-c)/k) with c = d/L and")
	fmt.Println("k = d/II+1; with d = 20, L ~ 199 (memory) and k = 21 that is ~95%.")
}
