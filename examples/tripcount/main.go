// The cost side: why the production compiler gates latency tolerance on a
// trip-count threshold (paper Secs. 2.2, 4.2 and the 464.h264ref /
// 177.mesa regressions).
//
// A cache-hot motion-search loop gains nothing from longer scheduled
// latencies — its loads hit the L1 — but every added pipeline stage costs
// one extra kernel iteration per loop execution. At trip count 10 that is
// ruinous; at trip count 1000 it is noise. This example sweeps the trip
// count and prints both compilations side by side, reproducing the
// reasoning behind the paper's n = 32 threshold.
//
// Run with: go run ./examples/tripcount
package main

import (
	"fmt"
	"log"

	"ltsp"
)

const (
	srcA  = 0x0100_0000
	srcB  = 0x0200_0000
	elems = 1 << 10
)

// buildLoop is the h264ref-style SAD kernel: two L1-resident unit-stride
// loads and a difference accumulation.
func buildLoop(hint ltsp.Hint) *ltsp.Loop {
	l := ltsp.NewLoop("blockmotion")
	ba, bb := l.NewGR(), l.NewGR()
	a, b, d, acc := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	lda := ltsp.Ld(a, ba, 4, 4)
	lda.Mem.Stride, lda.Mem.StrideBytes = ltsp.StrideUnit, 4
	lda.Mem.Hint = hint
	l.Append(lda)
	ldb := ltsp.Ld(b, bb, 4, 4)
	ldb.Mem.Stride, ldb.Mem.StrideBytes = ltsp.StrideUnit, 4
	ldb.Mem.Hint = hint
	l.Append(ldb)
	l.Append(ltsp.Sub(d, a, b))
	l.Append(ltsp.Add(acc, acc, d))
	l.Init(ba, srcA)
	l.Init(bb, srcB)
	l.Init(acc, 0)
	l.LiveOut = []ltsp.Reg{acc}
	return l
}

func seed(mem *ltsp.Memory) {
	for i := int64(0); i < elems; i++ {
		mem.Store(srcA+4*i, 4, 200+i%64)
		mem.Store(srcB+4*i, 4, i%64)
	}
}

// measure returns warm steady-state cycles per execution at the given trip.
func measure(c *ltsp.Compiled, trip int64) float64 {
	runner := ltsp.NewRunner(nil)
	mem := ltsp.NewMemory()
	seed(mem)
	// Warm up, then measure.
	if _, err := runner.Run(c.Program, trip, mem); err != nil {
		log.Fatal(err)
	}
	var total int64
	const n = 5
	for i := 0; i < n; i++ {
		r, err := runner.Run(c.Program, trip, mem)
		if err != nil {
			log.Fatal(err)
		}
		total += r.Cycles
	}
	return float64(total) / n
}

func main() {
	fmt.Println("Trip-count threshold: the cost of extra pipeline stages on cache-hot loops")
	fmt.Println()

	base, err := ltsp.Compile(buildLoop(ltsp.HintNone), ltsp.Options{Prefetch: true})
	if err != nil {
		log.Fatal(err)
	}
	boosted, err := ltsp.Compile(buildLoop(ltsp.HintL3), ltsp.Options{
		Prefetch: true, LatencyTolerant: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline kernel: II=%d, %d stages -> %d fill/drain iterations per execution\n",
		base.II, base.Stages, base.Stages-1)
	fmt.Printf("boosted  kernel: II=%d, %d stages -> %d fill/drain iterations per execution\n",
		boosted.II, boosted.Stages, boosted.Stages-1)
	fmt.Println()
	fmt.Println("The loads hit the L1 cache, so the boosted schedule has no stalls to")
	fmt.Println("remove; the added stages are pure cost, amortized only by long trips:")
	fmt.Println()

	fmt.Printf("%8s %14s %14s %10s\n", "trip", "baseline cyc", "boosted cyc", "change")
	for _, trip := range []int64{2, 4, 8, 10, 16, 32, 64, 128, 512} {
		cb := measure(base, trip)
		cv := measure(boosted, trip)
		fmt.Printf("%8d %14.1f %14.1f %+9.1f%%\n", trip, cb, cv, 100*(cb/cv-1))
	}
	fmt.Println()
	fmt.Println("Below the paper's n = 32 threshold the slowdown is substantial (the")
	fmt.Println("Fig. 7 h264ref and mesa regressions); above it the cost vanishes,")
	fmt.Println("which is why n = 32 'reduces the general regression risk but still")
	fmt.Println("gives virtually the same gains'.")
}
