package ltsp

import (
	"testing"
)

// buildExample constructs the paper's running example through the public
// API.
func buildExample(hint Hint) (*Loop, int64, int64) {
	const src, dst = 0x10000, 0x20000
	l := NewLoop("copyadd")
	v, bs, bd, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = StrideUnit, 4
	ld.Mem.Hint = hint
	l.Append(ld)
	l.Append(Add(r, v, k))
	st := St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = StrideUnit, 4
	l.Append(st)
	l.Init(bs, src)
	l.Init(bd, dst)
	l.Init(k, 5)
	l.LiveOut = []Reg{bs, bd}
	return l, src, dst
}

func TestCompilePipelines(t *testing.T) {
	l, _, _ := buildExample(HintL3)
	c, err := Compile(l, Options{Mode: ModeNone, Prefetch: true, LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined || c.II != 1 {
		t.Errorf("pipelined=%v II=%d", c.Pipelined, c.II)
	}
	if c.Stages != 23 {
		t.Errorf("stages = %d, want 23 (typical L3 latency 21 + 2)", c.Stages)
	}
	if len(c.Loads) != 1 || c.Loads[0].ClusterK != 21 {
		t.Errorf("loads = %+v", c.Loads)
	}
	if c.HLO == nil {
		t.Error("no HLO report")
	}
}

func TestCompileSequentialFallback(t *testing.T) {
	l, _, _ := buildExample(HintNone)
	off := false
	c, err := Compile(l, Options{Pipeline: &off})
	if err != nil {
		t.Fatal(err)
	}
	if c.Pipelined {
		t.Error("pipelined despite Pipeline=false")
	}
	if len(c.Program.Groups) == 0 {
		t.Error("no sequential schedule")
	}
}

func TestSimulateAndRun(t *testing.T) {
	l, src, dst := buildExample(HintL2)
	c, err := Compile(l, Options{Mode: ModeHLO, Prefetch: true, LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	for i := int64(0); i < 100; i++ {
		mem.Store(src+4*i, 4, i)
	}
	res, err := Simulate(c, 100, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
	for i := int64(0); i < 100; i++ {
		if got := res.State.Mem.Load(dst+4*i, 4); got != i+5 {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i+5)
		}
	}

	// The functional path must agree.
	mem2 := NewMemory()
	for i := int64(0); i < 100; i++ {
		mem2.Store(src+4*i, 4, i)
	}
	st, err := Run(c, 100, mem2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mem.Load(dst, 4) != 5 {
		t.Error("functional run wrong")
	}
}

func TestRunnerWarmCaches(t *testing.T) {
	l, src, _ := buildExample(HintNone)
	c, err := Compile(l, Options{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	for i := int64(0); i < 64; i++ {
		mem.Store(src+4*i, 4, i)
	}
	runner := NewRunner(nil)
	r1, err := runner.Run(c.Program, 64, mem)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runner.Run(c.Program, 64, mem)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Acct.ExeBubble > r1.Acct.ExeBubble {
		t.Errorf("warm run stalls more than cold: %d vs %d",
			r2.Acct.ExeBubble, r1.Acct.ExeBubble)
	}
}

func TestDefaultConfigs(t *testing.T) {
	if DefaultSimConfig().Model == nil {
		t.Error("sim config has no model")
	}
	if DefaultCacheConfig().MemLat != 200 {
		t.Error("cache config wrong")
	}
	m := Itanium2()
	if m.OzQCapacity != 48 {
		t.Error("machine model wrong")
	}
}

func TestFacadeIfConvert(t *testing.T) {
	l := NewLoop("diamond")
	x, k, a, b := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	vT, vE, v, st := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	body := []Stmt{
		StmtOf(AddI(x, x, 1)),
		CondOf(&IfRegion{
			Cmp:    CmpLt(l.NewPR(), l.NewPR(), x, k),
			Then:   []Stmt{StmtOf(Add(vT, a, b))},
			Else:   []Stmt{StmtOf(Sub(vE, a, b))},
			Merges: []Merge{{Dst: v, ThenVal: vT, ElseVal: vE}},
		}),
		StmtOf(St(st, v, 8, 8)),
	}
	if err := IfConvert(l, body); err != nil {
		t.Fatal(err)
	}
	l.Init(x, 0)
	l.Init(k, 4)
	l.Init(a, 100)
	l.Init(b, 30)
	l.Init(st, 0x10000)
	c, err := Compile(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Iterations 0..2 have x<4 after increment (x=1..3): 130; then 70.
	want := []int64{130, 130, 130, 70, 70, 70, 70, 70}
	for i, w := range want {
		if got := res.State.Mem.Load(0x10000+int64(8*i), 8); got != w {
			t.Errorf("iteration %d: %d, want %d", i, got, w)
		}
	}
}

func TestFacadeDataSpeculate(t *testing.T) {
	l := NewLoop("spec")
	v, tmp, bl, bs := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(Ld(v, bl, 8, 8))
	l.Append(AddI(tmp, v, 1))
	l.Append(St(bs, tmp, 8, 8))
	l.MemDeps = []MemDep{{From: 2, To: 0, Distance: 1, Latency: 2, MayAlias: true}}
	l.Init(bl, 0x1000)
	l.Init(bs, 0x2000)
	if n := DataSpeculate(l); n != 1 {
		t.Errorf("speculated %d deps", n)
	}
	if _, err := Compile(l, Options{LatencyTolerant: true}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDiagram(t *testing.T) {
	l, _, _ := buildExample(HintNone)
	c, err := Compile(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Diagram(4) == "" {
		t.Error("no diagram for a pipelined compilation")
	}
	off := false
	seq, err := Compile(buildSeq(), Options{Pipeline: &off})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Diagram(4) != "" {
		t.Error("diagram for a sequential compilation")
	}
}

func buildSeq() *Loop {
	l, _, _ := buildExample(HintNone)
	return l
}

func TestFacadeWhileLoop(t *testing.T) {
	// A minimal data-terminated loop through the public API: count the
	// chain length into an accumulator.
	l := NewLoop("countchain")
	pv := l.NewPR()
	pnext, pcur, acc := l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(Predicated(pv, Mov(pcur, pnext)))
	chase := Ld(pnext, pcur, 8, 0)
	chase.Mem.Stride = StridePointerChase
	l.Append(Predicated(pv, chase))
	l.Append(Predicated(pv, AddI(acc, acc, 1)))
	l.Append(Predicated(pv, CmpEqI(l.NewPR(), pv, pnext, 0)))
	l.While = &WhileInfo{Cond: pv}
	l.Init(pv, 1)
	l.Init(pnext, 0x8000)
	l.Init(acc, 0)
	l.LiveOut = []Reg{acc}

	mem := NewMemory()
	for i := int64(0); i < 5; i++ {
		next := int64(0x8000 + 16*(i+1))
		if i == 4 {
			next = 0
		}
		mem.Store(0x8000+16*i, 8, next)
	}
	c, err := Compile(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Pipelined || c.Program.WhileQP.IsNone() {
		t.Fatalf("while loop not pipelined with br.wtop: %+v", c)
	}
	res, err := Simulate(c, 100, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.ReadReg(c.Program.LiveOut[0]); got != 5 {
		t.Errorf("chain length = %d, want 5", got)
	}
}
